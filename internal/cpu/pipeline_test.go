package cpu

import (
	"errors"
	"strings"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
	"vcfr/internal/program"
)

const fibSrc = `
.entry main
main:
	movi r1, 0
	movi r2, 1
	movi r3, 20
loop:
	cmpi r3, 0
	je done
	mov r4, r2
	add r2, r1
	mov r1, r4
	subi r3, 1
	jmp loop
done:
	sys 3
	movi r1, 0
	sys 0
`

const callHeavySrc = `
.entry main
main:
	movi r8, 200        ; iterations
outer:
	cmpi r8, 0
	je done
	movi r1, 6
	call fact
	call mix
	subi r8, 1
	jmp outer
done:
	mov r1, r9
	sys 3
	movi r1, 0
	sys 0
.func fact
fact:
	cmpi r1, 1
	jg fr
	movi r0, 1
	ret
fr:
	push r1
	subi r1, 1
	call fact
	pop r1
	mul r0, r1
	ret
.func mix
mix:
	add r9, r0
	andi r9, 0xffff
	ret
`

// rewrite builds the ILR artifacts for a source program.
func rewriteSrc(t *testing.T, name, src string) *ilr.Result {
	t.Helper()
	img := asm.MustAssemble(name, src)
	res, err := ilr.Rewrite(img, ilr.Options{Seed: 99})
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	return res
}

// runPipe builds and runs a pipeline in the given mode over the rewrite
// artifacts.
func runPipe(t *testing.T, res *ilr.Result, mode Mode, mutate func(*Config)) Result {
	t.Helper()
	cfg := DefaultConfig(mode)
	if mutate != nil {
		mutate(&cfg)
	}
	var img *program.Image
	var trans emu.Translator
	var randRA map[uint32]uint32
	switch mode {
	case ModeBaseline:
		img = res.Orig
	case ModeNaiveILR:
		img, trans = res.Scattered, res.Tables
	case ModeVCFR:
		img, trans, randRA = res.VCFR, res.Tables, res.RandRA
	}
	p, err := New(img, cfg, trans, randRA)
	if err != nil {
		t.Fatalf("New(%v): %v", mode, err)
	}
	out, err := p.Run(0)
	if err != nil {
		t.Fatalf("Run(%v): %v", mode, err)
	}
	return out
}

func TestPipelineBaselineMatchesEmulator(t *testing.T) {
	res := rewriteSrc(t, "fib", fibSrc)
	want, err := emu.Run(res.Orig, emu.Config{Mode: emu.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	got := runPipe(t, res, ModeBaseline, nil)
	if string(got.Out) != string(want.Out) {
		t.Errorf("pipeline out = %q, emulator = %q", got.Out, want.Out)
	}
	if got.Stats.Instructions != want.Stats.Instructions {
		t.Errorf("instructions = %d, emulator = %d",
			got.Stats.Instructions, want.Stats.Instructions)
	}
	if !got.Halted {
		t.Error("did not halt")
	}
}

func TestPipelineAllModesEquivalent(t *testing.T) {
	for _, tc := range []struct{ name, src, want string }{
		{"fib", fibSrc, "6765"},
		// 200 iterations of fact(6)=720 accumulate; andi 0xffff sign-extends
		// to -1, so the mask is the identity: 200*720 = 144000.
		{"calls", callHeavySrc, "144000"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := rewriteSrc(t, tc.name, tc.src)
			for _, mode := range []Mode{ModeBaseline, ModeNaiveILR, ModeVCFR} {
				got := runPipe(t, res, mode, nil)
				if string(got.Out) != tc.want {
					t.Errorf("%v: out = %q, want %q", mode, got.Out, tc.want)
				}
			}
		})
	}
}

func TestPipelineIPCSane(t *testing.T) {
	res := rewriteSrc(t, "fib", fibSrc)
	got := runPipe(t, res, ModeBaseline, nil)
	ipc := got.Stats.IPC()
	if ipc < 0.3 || ipc > 1.0 {
		t.Errorf("baseline IPC = %.3f, want in (0.3, 1.0]", ipc)
	}
	if got.Stats.Cycles == 0 || got.Stats.Instructions == 0 {
		t.Error("no cycles/instructions accounted")
	}
}

func TestPipelineVCFRNeverFasterThanBaselineOnCalls(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	base := runPipe(t, res, ModeBaseline, nil)
	vcfr := runPipe(t, res, ModeVCFR, nil)
	if vcfr.Stats.Instructions != base.Stats.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d",
			vcfr.Stats.Instructions, base.Stats.Instructions)
	}
	if vcfr.Stats.Cycles < base.Stats.Cycles {
		t.Errorf("VCFR (%d cycles) beat baseline (%d cycles)",
			vcfr.Stats.Cycles, base.Stats.Cycles)
	}
	// But the overhead should be modest, nothing like naive ILR.
	if r := float64(vcfr.Stats.Cycles) / float64(base.Stats.Cycles); r > 1.35 {
		t.Errorf("VCFR overhead ratio %.2f, implausibly high", r)
	}
}

func TestPipelineVCFRUsesDRC(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	vcfr := runPipe(t, res, ModeVCFR, nil)
	if vcfr.DRC.Lookups == 0 {
		t.Fatal("no DRC lookups recorded")
	}
	if vcfr.DRC.RandLookups == 0 {
		t.Error("no randomization-direction lookups (calls should trigger them)")
	}
	if vcfr.Stats.Unrand != 0 {
		t.Errorf("unrandomized executions = %d, want 0", vcfr.Stats.Unrand)
	}
	base := runPipe(t, res, ModeBaseline, nil)
	if base.DRC.Lookups != 0 {
		t.Error("baseline recorded DRC lookups")
	}
}

func TestPipelineDRCSizeAffectsMissRate(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	big := runPipe(t, res, ModeVCFR, func(c *Config) { c.DRCEntries = 512 })
	small := runPipe(t, res, ModeVCFR, func(c *Config) { c.DRCEntries = 8 })
	if small.DRC.MissRate() <= big.DRC.MissRate() {
		t.Errorf("8-entry DRC miss rate %.3f <= 512-entry %.3f",
			small.DRC.MissRate(), big.DRC.MissRate())
	}
}

func TestPipelineNaiveILRDegradesIL1(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	base := runPipe(t, res, ModeBaseline, nil)
	naive := runPipe(t, res, ModeNaiveILR, nil)
	// The scattered layout must access IL1 far more often (one line per
	// instruction instead of one per ~13).
	if naive.IL1.Accesses < 3*base.IL1.Accesses {
		t.Errorf("naive IL1 accesses %d vs baseline %d: scatter not visible",
			naive.IL1.Accesses, base.IL1.Accesses)
	}
	// And downstream pressure on the L2 grows.
	if naive.L2.Accesses <= base.L2.Accesses {
		t.Errorf("naive L2 pressure %d <= baseline %d",
			naive.L2.Accesses, base.L2.Accesses)
	}
	// IPC suffers.
	if naive.Stats.IPC() >= base.Stats.IPC() {
		t.Errorf("naive IPC %.3f >= baseline %.3f", naive.Stats.IPC(), base.Stats.IPC())
	}
}

func TestPipelineVCFRPreservesFetchLocality(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	base := runPipe(t, res, ModeBaseline, nil)
	vcfr := runPipe(t, res, ModeVCFR, nil)
	naive := runPipe(t, res, ModeNaiveILR, nil)
	// VCFR's fetch behaviour is essentially the baseline's: same access
	// pattern, same line count. The naive mode touches far more lines.
	ratio := float64(vcfr.IL1.Accesses) / float64(base.IL1.Accesses)
	if ratio > 1.1 {
		t.Errorf("VCFR IL1 accesses %.2fx baseline", ratio)
	}
	if naive.IL1.Accesses < 3*vcfr.IL1.Accesses {
		t.Errorf("naive IL1 accesses %d vs VCFR %d: locality contrast missing",
			naive.IL1.Accesses, vcfr.IL1.Accesses)
	}
	// The IPC ordering naive < vcfr needs a program whose hot code exceeds
	// the IL1 when scattered; that is covered by the harness experiments on
	// the SPEC analogs (Fig. 12), not by this tiny kernel.
}

func TestPipelineBranchPredictionIdenticalAcrossSpaces(t *testing.T) {
	res := rewriteSrc(t, "fib", fibSrc)
	base := runPipe(t, res, ModeBaseline, nil)
	vcfr := runPipe(t, res, ModeVCFR, nil)
	if base.BPred.CondLookups != vcfr.BPred.CondLookups ||
		base.BPred.CondMispred != vcfr.BPred.CondMispred {
		t.Errorf("direction prediction diverged: base %+v vcfr %+v",
			base.BPred, vcfr.BPred)
	}
}

func TestPipelinePredictOnRPCAblation(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	upc := runPipe(t, res, ModeVCFR, nil)
	rpc := runPipe(t, res, ModeVCFR, func(c *Config) { c.PredictOnRPC = true })
	// Predicting in randomized space forces a DRC access on every correct
	// taken prediction: lookup traffic must rise substantially.
	if rpc.DRC.Lookups <= upc.DRC.Lookups {
		t.Errorf("PredictOnRPC lookups %d <= UPC-predicted %d",
			rpc.DRC.Lookups, upc.DRC.Lookups)
	}
}

func TestPipelineControlViolationFaults(t *testing.T) {
	src := `
.entry main
main:
	movi r5, gadget     ; original-space address, prohibited after rewrite
	addi r5, 0          ; defeat constant-prop resolution
	jmpr r5
	halt
.func gadget
gadget:
	movi r1, 7
	ret
`
	img := asm.MustAssemble("attack", src)
	res, err := ilr.Rewrite(img, ilr.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The movi constant gets patched to the randomized address by the
	// rewriter (it is relocated) — so emulate the attacker by restoring the
	// ORIGINAL address in the register at run time instead: plant it via
	// the image's data... simplest: flip the patched word back.
	gadget, _ := img.Lookup("gadget")
	text := res.VCFR.Text()
	// movi r5, imm32 is the first instruction: imm at entry+2.
	res.VCFR.WriteWord(res.VCFR.Entry+2, gadget)
	_ = text
	p, err := New(res.VCFR, DefaultConfig(ModeVCFR), res.Tables, res.RandRA)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(0)
	if !errors.Is(err, ErrControlViolation) {
		t.Errorf("err = %v, want ErrControlViolation", err)
	}
}

func TestPipelineConfigValidation(t *testing.T) {
	img := asm.MustAssemble("m", ".entry main\nmain: halt")
	bad := DefaultConfig(ModeBaseline)
	bad.GshareBits = 0
	if _, err := New(img, bad, nil, nil); err == nil {
		t.Error("bad gshare accepted")
	}
	bad = DefaultConfig(ModeVCFR)
	bad.DRCEntries = 0
	if _, err := New(img, bad, nil, nil); err == nil {
		t.Error("bad DRC accepted")
	}
	if _, err := New(img, DefaultConfig(ModeVCFR), nil, nil); err == nil {
		t.Error("VCFR without translator accepted")
	}
	cfg := DefaultConfig(ModeBaseline)
	cfg.Mode = Mode(0)
	if err := cfg.Validate(); err == nil {
		t.Error("zero mode accepted")
	}
	cfg = DefaultConfig(ModeBaseline)
	cfg.BTBEntries = 10
	cfg.BTBAssoc = 4
	if err := cfg.Validate(); err == nil {
		t.Error("indivisible BTB accepted")
	}
	cfg = DefaultConfig(ModeBaseline)
	cfg.RASDepth = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero RAS accepted")
	}
}

func TestPipelineStallBreakdownConsistent(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	out := runPipe(t, res, ModeVCFR, nil)
	s := out.Stats
	overhead := s.FetchStall + s.MemStall + s.ExecStall + s.ControlStall
	if s.Cycles < s.Instructions {
		t.Errorf("cycles %d < instructions %d", s.Cycles, s.Instructions)
	}
	if s.Cycles > s.Instructions+overhead+s.DRCStall {
		t.Errorf("cycles %d exceed instructions+stalls %d",
			s.Cycles, s.Instructions+overhead+s.DRCStall)
	}
}

func TestPipelineRunRespectsInstructionBudget(t *testing.T) {
	res := rewriteSrc(t, "fib", fibSrc)
	p, err := New(res.Orig, DefaultConfig(ModeBaseline), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Instructions != 10 {
		t.Errorf("instructions = %d, want 10", out.Stats.Instructions)
	}
	if out.Halted {
		t.Error("halted inside budget")
	}
}

func TestPipelineGetcharInput(t *testing.T) {
	src := `
.entry main
main:
	sys 2
	cmpi r0, -1
	je done
	mov r1, r0
	sys 1
	jmp main
done:
	movi r1, 0
	sys 0
`
	res := rewriteSrc(t, "echo", src)
	p, err := New(res.VCFR, DefaultConfig(ModeVCFR), res.Tables, res.RandRA)
	if err != nil {
		t.Fatal(err)
	}
	p.SetInput([]byte("pipeline"))
	out, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Out) != "pipeline" {
		t.Errorf("out = %q", out.Out)
	}
}

func TestModeStringNames(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeBaseline: "baseline", ModeNaiveILR: "naive-ilr",
		ModeVCFR: "vcfr",
	} {
		if got := m.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if !strings.Contains(Mode(77).String(), "77") {
		t.Error("unknown mode string")
	}
}

func BenchmarkPipelineBaselineStep(b *testing.B) {
	img := asm.MustAssemble("bench", fibSrc)
	p, err := New(img, DefaultConfig(ModeBaseline), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		running, err := p.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !running {
			p, _ = New(img, DefaultConfig(ModeBaseline), nil, nil)
		}
	}
}

func BenchmarkPipelineVCFRStep(b *testing.B) {
	img := asm.MustAssemble("bench", fibSrc)
	res, err := ilr.Rewrite(img, ilr.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(res.VCFR, DefaultConfig(ModeVCFR), res.Tables, res.RandRA)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		running, err := p.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !running {
			p, _ = New(res.VCFR, DefaultConfig(ModeVCFR), res.Tables, res.RandRA)
		}
	}
}
