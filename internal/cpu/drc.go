package cpu

import "vcfr/internal/emu"

// This file implements the De-Randomization Cache of Sec. IV-B: a small,
// unified (randomization + de-randomization) lookup buffer in front of the
// instruction fetch unit. Each entry carries a derand-type tag telling which
// direction it translates, a valid bit, and — for de-rand entries mapping
// un-randomized addresses — the randomized tag that prohibits control
// transfers to safely randomized original addresses.
//
// The DRC is direct-mapped by default (DRCAssoc 1), exactly the paper's
// design point: "We designed DRC as direct mapped cache with small size to
// minimize power consumption... The design doesn't require a fully-
// associative DRC since the miss penalty is marginal." A miss walks the
// table pages through the unified L2 (the table shares L2 with IL1).

// lookupKind distinguishes the two translation directions.
type lookupKind uint8

const (
	lookupDerand lookupKind = iota + 1 // randomized -> original
	lookupRand                         // original -> randomized
)

// DRCStats counts DRC events, the basis of Fig. 14.
type DRCStats struct {
	Lookups       uint64
	Misses        uint64
	RandLookups   uint64 // randomization-direction lookups (e.g. call RAs)
	DerandLookups uint64
	TableWalks    uint64 // L2-backed walks caused by misses
	Installs      uint64

	// Level-2 buffer activity (only with Config.DRC2Entries > 0).
	L2Lookups uint64
	L2Hits    uint64

	Flushes uint64 // context-switch flushes
}

// MissRate returns misses per lookup.
func (s DRCStats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

type drcEntry struct {
	valid  bool
	derand bool // entry type tag
	key    uint32
	val    uint32
	lru    uint64
}

// drc is the lookup buffer. The authoritative translation lives in the
// Translator (the in-memory tables); the drc only caches entries and
// produces timing + statistics.
//
// The paper's design point is one unified buffer with a per-entry type tag
// ("for more efficient usage of silicon resources, we use one unified lookup
// buffer"); the split configuration — two half-size buffers, one per
// direction — exists as the ablation that justifies it.
type drc struct {
	split bool
	banks [2][][]drcEntry // [0] unified/derand, [1] rand when split
	masks [2]uint32
	clock uint64
	stats DRCStats
	trans emu.Translator
}

func newDRC(entries, assoc int, split bool, trans emu.Translator) *drc {
	d := &drc{split: split, trans: trans}
	mk := func(n int) ([][]drcEntry, uint32) {
		nsets := n / assoc
		if nsets < 1 {
			nsets = 1
		}
		sets := make([][]drcEntry, nsets)
		for i := range sets {
			sets[i] = make([]drcEntry, assoc)
		}
		return sets, uint32(nsets - 1)
	}
	if split {
		d.banks[0], d.masks[0] = mk(entries / 2)
		d.banks[1], d.masks[1] = mk(entries / 2)
	} else {
		d.banks[0], d.masks[0] = mk(entries)
	}
	return d
}

func (d *drc) bank(kind lookupKind) int {
	if d.split && kind == lookupRand {
		return 1
	}
	return 0
}

// index hashes a translation key to a set with a single XOR fold — one level
// of gates beyond plain bit selection, still a direct-mapped-friendly
// indexer. The fold matters: randomized-space keys are 8-byte-slot aligned,
// so selecting raw low bits would leave a fraction of the sets permanently
// idle for de-randomization entries.
func (d *drc) index(key uint32, kind lookupKind) uint32 {
	return ((key >> 3) ^ (key >> 11)) & d.masks[d.bank(kind)]
}

// lookup translates key in the given direction. hit reports whether the
// translation was resident (a miss still returns the correct translation —
// the table walk fetched it; the pipeline charges the walk latency).
// ok is false when no translation exists at all (un-randomized address).
func (d *drc) lookup(kind lookupKind, key uint32) (val uint32, hit, ok bool) {
	d.stats.Lookups++
	if kind == lookupRand {
		d.stats.RandLookups++
	} else {
		d.stats.DerandLookups++
	}
	sets := d.banks[d.bank(kind)]
	set := d.index(key, kind)
	d.clock++
	for w := range sets[set] {
		e := &sets[set][w]
		if e.valid && e.key == key && e.derand == (kind == lookupDerand) {
			e.lru = d.clock
			return e.val, true, true
		}
	}
	d.stats.Misses++
	// Miss: consult the authoritative table (the pipeline charges the L2
	// walk separately via walkLatency).
	switch kind {
	case lookupDerand:
		val, ok = d.trans.ToOrig(key)
	case lookupRand:
		val, ok = d.trans.ToRand(key)
	}
	if !ok {
		// Negative result: nothing to install. The prohibition check for
		// un-randomized addresses is the caller's job (it needs the tag from
		// the tables, not a translation).
		return 0, false, false
	}
	d.install(kind, key, val)
	return val, false, true
}

func (d *drc) install(kind lookupKind, key, val uint32) {
	d.stats.Installs++
	sets := d.banks[d.bank(kind)]
	set := d.index(key, kind)
	d.clock++
	victim, oldest := 0, ^uint64(0)
	for w := range sets[set] {
		e := &sets[set][w]
		if !e.valid {
			victim, oldest = w, 0
			break
		}
		if e.lru < oldest {
			victim, oldest = w, e.lru
		}
	}
	sets[set][victim] = drcEntry{
		valid:  true,
		derand: kind == lookupDerand,
		key:    key,
		val:    val,
		lru:    d.clock,
	}
}

// probe checks residency without consulting the tables or counting a
// top-level lookup (used for the level-2 buffer).
func (d *drc) probe(kind lookupKind, key uint32) (uint32, bool) {
	sets := d.banks[d.bank(kind)]
	set := d.index(key, kind)
	for w := range sets[set] {
		e := &sets[set][w]
		if e.valid && e.key == key && e.derand == (kind == lookupDerand) {
			d.clock++
			e.lru = d.clock
			return e.val, true
		}
	}
	return 0, false
}

// flush invalidates every entry — the translation state is process-private,
// so a context switch empties the buffer.
func (d *drc) flush() {
	for b := range d.banks {
		for set := range d.banks[b] {
			for w := range d.banks[b][set] {
				d.banks[b][set][w].valid = false
			}
		}
	}
	d.stats.Flushes++
}
