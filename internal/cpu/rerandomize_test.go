package cpu_test

import (
	"errors"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
	"vcfr/internal/isa"
	"vcfr/internal/program"
	"vcfr/internal/workloads"
)

// executedImage returns the image a pipeline in the given mode fetches from.
func executedImage(res *ilr.Result, mode cpu.Mode) *program.Image {
	switch mode {
	case cpu.ModeNaiveILR:
		return res.Scattered
	case cpu.ModeVCFR:
		return res.VCFR
	}
	return res.Orig
}

// TestRerandomizePreservesComputation runs each workload to completion twice
// — once untouched, once swapped onto a fresh layout at several mid-run
// points — and demands the same computation: identical output, exit code,
// halt state, and original-space pc. Registers are compared after
// de-randomizing each side through its own final tables, since a register
// legitimately holds an epoch-specific randomized code pointer under VCFR.
func TestRerandomizePreservesComputation(t *testing.T) {
	const cap = 30_000
	for _, mode := range []cpu.Mode{cpu.ModeNaiveILR, cpu.ModeVCFR} {
		for _, name := range []string{"bzip2", "sjeng"} {
			t.Run(mode.String()+"/"+name, func(t *testing.T) {
				w, err := workloads.ByName(name, 1)
				if err != nil {
					t.Fatal(err)
				}
				res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				plain := pipeFor(t, res, mode, w.Input, nil)
				pr, perr := plain.Run(cap)
				if perr != nil {
					t.Fatalf("uninterrupted run: %v", perr)
				}

				swapped := pipeFor(t, res, mode, w.Input, nil)
				cur := res
				var sr cpu.Result
				for i, stop := range []uint64{7_000, 14_000, 21_000, cap} {
					if sr, err = swapped.Run(stop); err != nil {
						t.Fatalf("segment %d: %v", i, err)
					}
					if sr.Halted || stop == cap {
						break
					}
					next, err := cur.Rerandomize(int64(1000 + i))
					if err != nil {
						t.Fatalf("rewriter epoch %d: %v", i, err)
					}
					if err := swapped.Rerandomize(executedImage(next, mode), next.Tables, next.RandRA); err != nil {
						t.Fatalf("swap %d: %v", i, err)
					}
					cur = next
				}

				if string(sr.Out) != string(pr.Out) {
					t.Errorf("output diverged:\n swapped: %q\n plain:   %q", sr.Out, pr.Out)
				}
				if sr.ExitCode != pr.ExitCode || sr.Halted != pr.Halted {
					t.Errorf("exit diverged: %d/%v vs %d/%v",
						sr.ExitCode, sr.Halted, pr.ExitCode, pr.Halted)
				}
				if swapped.PC() != plain.PC() {
					t.Errorf("pc diverged: %#x vs %#x", swapped.PC(), plain.PC())
				}
				ss, ps := swapped.State(), plain.State()
				norm := func(tr *ilr.Tables, v uint32) uint32 {
					if orig, ok := tr.ToOrig(v); ok {
						return orig
					}
					return v
				}
				for i := range ss.R {
					if norm(cur.Tables, ss.R[i]) != norm(res.Tables, ps.R[i]) {
						t.Errorf("r%d diverged: %#x vs %#x (normalized %#x vs %#x)",
							i, ss.R[i], ps.R[i],
							norm(cur.Tables, ss.R[i]), norm(res.Tables, ps.R[i]))
					}
				}
				if sr.Stats.Instructions != pr.Stats.Instructions {
					t.Errorf("instruction count diverged: %d vs %d",
						sr.Stats.Instructions, pr.Stats.Instructions)
				}
			})
		}
	}
}

// TestRerandomizeBaselineErrors pins that a baseline pipeline refuses the
// swap: there is no layout to replace.
func TestRerandomizeBaselineErrors(t *testing.T) {
	w, err := workloads.ByName("bzip2", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeFor(t, res, cpu.ModeBaseline, w.Input, nil)
	if err := p.Rerandomize(res.Orig, res.Tables, nil); err == nil {
		t.Fatal("baseline Rerandomize succeeded")
	}
	vp := pipeFor(t, res, cpu.ModeVCFR, w.Input, nil)
	if err := vp.Rerandomize(res.VCFR, nil, nil); err == nil {
		t.Fatal("nil-translator Rerandomize succeeded")
	}
}

// TestRerandomizeKillsStaleTarget pins the security property the attack
// campaign measures: a control transfer to an old-epoch randomized address
// faults with ErrControlViolation after the swap, because the new tables
// neither de-randomize it nor allow it as a failover target.
func TestRerandomizeKillsStaleTarget(t *testing.T) {
	w, err := workloads.ByName("bzip2", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	next, err := res.Rerandomize(8)
	if err != nil {
		t.Fatal(err)
	}

	// A victim whose first ret is redirected, via injector hooks, to an
	// old-epoch randomized address that the new epoch does not map.
	var stale uint32
	for _, orig := range res.Tables.OrigAddrs() {
		r, _ := res.Tables.ToRand(orig)
		if _, ok := next.Tables.ToOrig(r); !ok {
			stale = r
			break
		}
	}
	if stale == 0 {
		t.Fatal("no stale old-epoch address found (layouts identical?)")
	}

	p := pipeFor(t, res, cpu.ModeVCFR, w.Input, nil)
	if err := p.Rerandomize(next.VCFR, next.Tables, next.RandRA); err != nil {
		t.Fatal(err)
	}
	fired := false
	p.SetInjector(&cpu.InjectHooks{
		Outcome: func(seq uint64, in isa.Inst, out *emu.Outcome) {
			if !fired && in.Class() == isa.ClassRet {
				fired = true
				out.Target = stale
			}
		},
	})
	_, err = p.Run(50_000)
	if !fired {
		t.Fatal("victim never executed a ret")
	}
	if !errors.Is(err, cpu.ErrControlViolation) {
		t.Fatalf("stale old-epoch target survived the swap: err = %v", err)
	}
}
