package cpu

import (
	"vcfr/internal/emu"
	"vcfr/internal/isa"
)

// InjectHooks are the pipeline's fault-injection points, installed with
// SetInjector. Each hook observes (and may mutate) one micro-architectural
// value as the instruction with sequence number seq flows through Step:
//
//   - FetchBytes fires at fetch, before decode, with the raw bytes read from
//     storage. Mutating buf models a transient corruption of the fetch path
//     (an opcode-byte flip); the mutated bytes go through the normal decoder
//     and a failed decode surfaces as the usual emu fetch Fault.
//   - Outcome fires after functional execution with the instruction's
//     emu.Outcome. Mutating out.Target models a corrupted control-flow
//     target in the architectural (possibly randomized) space: a flipped
//     branch/call immediate, a smashed stack return address, a corrupted
//     indirect-branch register.
//   - Translated fires inside the VCFR target resolution after a successful
//     DRC/table de-randomization, with the randomized key and the
//     original-space translation. Mutating orig models a corrupted DRC
//     entry: the prohibition check already passed, so execution continues
//     at the wrong original-space address.
//
// seq is the zero-based index of the executing instruction (the commit
// count before it retires), which is how an injector targets exactly one
// dynamic instruction. Hooks are ignored during trace replay: replay
// substitutes recorded outcomes for fetch/execute, so there is nothing
// micro-architectural to corrupt.
type InjectHooks struct {
	FetchBytes func(seq uint64, addr uint32, buf []byte)
	Outcome    func(seq uint64, in isa.Inst, out *emu.Outcome)
	Translated func(seq uint64, rand uint32, orig *uint32)
}

// SetInjector installs fault-injection hooks (nil removes them). The
// injected pipeline stays deterministic: with the same hooks the same run
// replays bit-identically.
//
// Arming an injector invalidates the basic-block cache and forces the
// per-instruction fetch path for as long as the hooks stay installed: a
// FetchBytes hook must observe every raw fetch, which a pre-decoded block
// would skip.
func (p *Pipeline) SetInjector(h *InjectHooks) {
	p.inject = h
	p.InvalidateBlocks()
}

// fetchDecodeInjected is emu.FetchDecode with the FetchBytes hook spliced
// between the storage read and the decoder.
func (p *Pipeline) fetchDecodeInjected(addr uint32) (isa.Inst, error) {
	var buf [isa.MaxLength]byte
	for i := range buf {
		buf[i] = p.mem.ByteAt(addr + uint32(i))
	}
	p.inject.FetchBytes(p.stats.Instructions, addr, buf[:])
	return emu.DecodeBytes(buf[:], addr)
}
