package cpu_test

import (
	"fmt"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/ilr"
	"vcfr/internal/workloads"
)

// BenchmarkCluster times the scheduled multi-tenant path end to end: four
// h264ref tenants (distinct randomization epochs) time-sharing two cores
// through the quantum scheduler, so every dispatch pays the real switch-in
// machinery (DRC/iTLB flush, block-cache drop under per-process-key modes)
// and every access goes through the per-tenant physical page tag and the
// shared L2. The ns/instr metric is the multicore analog of the pipeline
// budget in BENCH_pipeline.json; scripts/bench_multicore.sh archives it in
// BENCH_multicore.json and holds it within 1.5x of the pinned
// single-core execute figure.
//
//	go test ./internal/cpu -bench BenchmarkCluster -benchtime 3x
func BenchmarkCluster(b *testing.B) {
	const (
		cores   = 2
		tenants = 4
		cap     = 60_000
	)
	w := workloads.MustByName("h264ref", 1)
	for _, mode := range []cpu.Mode{cpu.ModeBaseline, cpu.ModeVCFR} {
		b.Run(fmt.Sprint(mode), func(b *testing.B) {
			procs := make([]cpu.ClusterProc, tenants)
			for i := range procs {
				res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: 42 + int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				switch mode {
				case cpu.ModeBaseline:
					procs[i] = cpu.ClusterProc{Img: res.Orig, Input: w.Input}
				default:
					procs[i] = cpu.ClusterProc{Img: res.VCFR, Trans: res.Tables, RandRA: res.RandRA, Input: w.Input}
				}
			}
			b.ResetTimer()
			var insts uint64
			for i := 0; i < b.N; i++ {
				cl, err := cpu.NewScheduledCluster(cpu.DefaultConfig(mode), cpu.SchedConfig{Cores: cores}, procs)
				if err != nil {
					b.Fatal(err)
				}
				results, err := cl.Run(cap)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					insts += r.Stats.Instructions
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/instr")
		})
	}
}
