package cpu

import (
	"strconv"

	"vcfr/internal/stats"
)

// This file wires the pipeline into the statistics spine (internal/stats).
// Every counter below is registered exactly once under its canonical dotted
// name; the text report, the results envelope's interval series, and any
// Prometheus rendering all derive from these registrations instead of naming
// fields by hand. The registered pointers alias the fields the hot loop
// increments, so the spine costs nothing on the simulate path.

// Register registers the core pipeline counters under the cpu.* names. The
// nested BPred sub-struct is *not* registered here — callers register the
// authoritative BPredStats themselves (the live predictor state for a
// running pipeline, the top-level Result copy for a finished run), which
// keeps each bpred.* name single-sourced.
func (s *Stats) Register(r *stats.Registry) {
	s.register(r, &s.ITLBAccesses, &s.ITLBMisses)
}

// register is the one authoritative cpu.* name list. The iTLB counters are
// passed in because they have two sources: the Stats mirror fields (synced
// when a run finishes — the Result path) and the live itlb structure (the
// mid-run sampling path).
func (s *Stats) register(r *stats.Registry, itlbAcc, itlbMiss *uint64) {
	sc := r.Scope("cpu")
	sc.Counter("cycles", "Total simulated cycles.", &s.Cycles)
	sc.Counter("instructions", "Instructions committed.", &s.Instructions)
	sc.Counter("branches", "Executed conditional branches.", &s.Branches)
	sc.Counter("jumps", "Executed unconditional direct jumps.", &s.Jumps)
	sc.Counter("calls", "Executed calls (direct and indirect).", &s.Calls)
	sc.Counter("rets", "Executed returns.", &s.Rets)
	sc.Counter("indirects", "Executed indirect transfers (jmpr/callr/ret).", &s.Indirects)
	sc.Counter("loads", "Executed loads.", &s.Loads)
	sc.Counter("stores", "Executed stores.", &s.Stores)
	sc.Counter("syscalls", "Executed syscalls.", &s.Syscalls)
	sc.Counter("unrand", "Instructions executed at un-randomized addresses.", &s.Unrand)
	sc.Counter("fetch.lines", "Line fetches issued by the front end.", &s.FetchLines)
	sc.Counter("stall.fetch", "Front-end fetch stall cycles.", &s.FetchStall)
	sc.Counter("stall.mem", "Data-cache stall cycles.", &s.MemStall)
	sc.Counter("stall.exec", "Execute-stage stall cycles (long ops, syscalls).", &s.ExecStall)
	sc.Counter("stall.control", "Control-flow stall cycles.", &s.ControlStall)
	sc.Counter("stall.drc", "DRC translation stall cycles.", &s.DRCStall)
	sc.Counter("stall.syscall", "Syscall latency cycles (subset of stall.exec).", &s.SyscallCycles)
	sc.Counter("itlb.accesses", "Instruction-TLB accesses.", itlbAcc)
	sc.Counter("itlb.misses", "Instruction-TLB misses (page walks).", itlbMiss)
}

// Register registers the branch-prediction counters under the bpred.* names.
func (s *BPredStats) Register(r *stats.Registry) {
	sc := r.Scope("bpred")
	sc.Counter("cond.lookups", "Conditional direction predictions.", &s.CondLookups)
	sc.Counter("cond.mispredicts", "Wrong-direction conditional predictions.", &s.CondMispred)
	sc.Counter("btb.lookups", "BTB lookups.", &s.BTBLookups)
	sc.Counter("btb.misses", "BTB misses.", &s.BTBMisses)
	sc.Counter("btb.wrong_target", "BTB hits with a stale target.", &s.BTBWrongTgt)
	sc.Counter("ras.pushes", "Return-address-stack pushes.", &s.RASPushes)
	sc.Counter("ras.pops", "Return-address-stack pops.", &s.RASPops)
	sc.Counter("ras.mispredicts", "Return-address mispredictions.", &s.RASMispred)
	sc.Counter("indirect.wrong", "Indirect-target mispredictions.", &s.IndirectWrong)
}

// Register registers the De-Randomization Cache counters under the drc.*
// names.
func (s *DRCStats) Register(r *stats.Registry) {
	sc := r.Scope("drc")
	sc.Counter("lookups", "DRC lookups.", &s.Lookups)
	sc.Counter("misses", "DRC misses.", &s.Misses)
	sc.Counter("lookups.rand", "Randomization-direction lookups (call RAs).", &s.RandLookups)
	sc.Counter("lookups.derand", "De-randomization-direction lookups.", &s.DerandLookups)
	sc.Counter("table_walks", "L2-backed table walks caused by misses.", &s.TableWalks)
	sc.Counter("installs", "Entries installed.", &s.Installs)
	sc.Counter("l2.lookups", "Level-2 DRC buffer probes.", &s.L2Lookups)
	sc.Counter("l2.hits", "Level-2 DRC buffer hits.", &s.L2Hits)
	sc.Counter("flushes", "Context-switch flushes.", &s.Flushes)
}

// register fills reg with the pipeline's live counters: core stats, the live
// predictor state, the memory hierarchy, the iTLB's own counters (the Stats
// mirror fields are synced only when a run finishes), and — under VCFR —
// the DRC. Snapshots of the returned registry observe the simulation mid-run.
func (p *Pipeline) register(reg *stats.Registry) *stats.Registry {
	p.stats.register(reg, &p.itlb.accesses, &p.itlb.misses)
	p.stats.BPred.Register(reg)
	p.hier.Register(reg)
	if p.drc != nil {
		p.drc.stats.Register(reg)
	}
	return reg
}

// Registry returns the pipeline's live counter registry, built on first use
// and cached. Mid-run snapshots of it power interval sampling
// (Config.SampleEvery) and never perturb timing.
func (p *Pipeline) Registry() *stats.Registry {
	if p.reg == nil {
		p.reg = p.register(stats.New())
	}
	return p.reg
}

// Registry builds a value-backed registry over a finished run's counters:
// the same canonical names as the live pipeline registry, read from the
// Result's embedded stat structs. Consumers that format finished runs (the
// vcfrsim text report, harness tables) resolve names against this instead of
// naming struct fields a second time.
func (r *Result) Registry() *stats.Registry {
	reg := stats.New()
	r.Stats.Register(reg)
	r.BPred.Register(reg)
	r.IL1.Register(reg, "mem.il1")
	r.DL1.Register(reg, "mem.dl1")
	r.L2.Register(reg, "mem.l2")
	r.DRAM.Register(reg, "dram")
	r.DRC.Register(reg)
	return reg
}

// Register registers one core's scheduler counters under the sched.* names.
func (s *SchedStats) Register(r *stats.Registry) {
	sc := r.Scope("sched")
	sc.Counter("quanta", "Time slices dispatched on this core.", &s.Quanta)
	sc.Counter("switches", "Dispatches that changed tenants (switch-in cost charged).", &s.Switches)
	sc.Counter("preemptions", "Quanta that expired with the tenant still runnable.", &s.Preemptions)
	sc.Counter("block_drops", "Decoded-block cache invalidations on switch-in.", &s.BlockDrops)
	sc.Counter("switched_in", "Instructions executed in post-switch (cold) quanta.", &s.SwitchedIn)
	sc.Counter("tenants", "Tenant processes pinned to this core.", &s.TenantsBound)
}

// Registries returns one live registry per tenant, labelled with the core
// the tenant is pinned to and its tenant index (core="0",tenant="1", …):
// the per-tenant dimension of the spine. Core-shared state — the pinned
// core's scheduler counters and the cluster's L2 and DRAM — appears in
// every co-tenant's registry and reads the same shared counters, exactly
// like the shared cache levels always have.
func (cl *Cluster) Registries() []*stats.Registry {
	out := make([]*stats.Registry, len(cl.Tenants))
	for i, p := range cl.Tenants {
		c := cl.CoreOf(i)
		reg := stats.NewLabeled("core", strconv.Itoa(c), "tenant", strconv.Itoa(i))
		p.register(reg)
		cl.stats[c].Register(reg)
		out[i] = reg
	}
	return out
}
