package cpu

import (
	"strings"
	"testing"
)

// TestValidateRejections pins Config.Validate's rejection messages. Validate
// is the one place machine-config bounds are checked — vcfrsim validates its
// flags through it and the vcfrd service validates request bodies through it
// — so these messages are user-facing on both surfaces and must not drift.
func TestValidateRejections(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := DefaultConfig(ModeVCFR)
		f(&c)
		return c
	}
	tests := []struct {
		name string
		cfg  Config
		want string // exact error message; "" = must pass
	}{
		{"default-baseline", DefaultConfig(ModeBaseline), ""},
		{"default-naive", DefaultConfig(ModeNaiveILR), ""},
		{"default-vcfr", DefaultConfig(ModeVCFR), ""},
		{"zero-mode", mod(func(c *Config) { c.Mode = 0 }),
			"cpu: invalid mode 0"},
		{"mode-out-of-range", mod(func(c *Config) { c.Mode = 7 }),
			"cpu: invalid mode 7"},
		{"gshare-zero", mod(func(c *Config) { c.GshareBits = 0 }),
			"cpu: gshare bits 0 out of range"},
		{"gshare-too-wide", mod(func(c *Config) { c.GshareBits = 25 }),
			"cpu: gshare bits 25 out of range"},
		{"btb-zero", mod(func(c *Config) { c.BTBEntries = 0 }),
			"cpu: BTB 0 entries / 4 ways invalid"},
		{"btb-uneven-ways", mod(func(c *Config) { c.BTBEntries = 500; c.BTBAssoc = 3 }),
			"cpu: BTB 500 entries / 3 ways invalid"},
		{"ras-zero", mod(func(c *Config) { c.RASDepth = 0 }),
			"cpu: RAS depth 0 invalid"},
		{"itlb-zero", mod(func(c *Config) { c.ITLBEntries = 0 }),
			"cpu: iTLB 0 entries / walk 30 invalid"},
		{"negative-walk", mod(func(c *Config) { c.PageWalkLatency = -1 }),
			"cpu: iTLB 64 entries / walk -1 invalid"},
		{"split-odd", mod(func(c *Config) { c.DRCSplit = true; c.DRCEntries = 127 }),
			"cpu: split DRC needs an even entry count, got 127"},
		{"drc2-negative", mod(func(c *Config) { c.DRC2Entries = -1 }),
			"cpu: DRC2 -1 entries / 3 latency invalid"},
		{"drc2-no-latency", mod(func(c *Config) { c.DRC2Entries = 64; c.DRC2Latency = 0 }),
			"cpu: DRC2 64 entries / 0 latency invalid"},
		{"width-zero", mod(func(c *Config) { c.IssueWidth = 0 }),
			"cpu: issue width 0 out of range [1,4]"},
		{"width-too-wide", mod(func(c *Config) { c.IssueWidth = 5 }),
			"cpu: issue width 5 out of range [1,4]"},
		{"drc-zero", mod(func(c *Config) { c.DRCEntries = 0 }),
			"cpu: DRC 0 entries / 1 ways invalid"},
		{"drc-uneven-ways", mod(func(c *Config) { c.DRCEntries = 100; c.DRCAssoc = 3 }),
			"cpu: DRC 100 entries / 3 ways invalid"},
		// The DRC bounds apply only to the mode that has a DRC: a baseline
		// machine with a nonsense DRC config is still valid.
		{"drc-ignored-outside-vcfr", func() Config {
			c := DefaultConfig(ModeBaseline)
			c.DRCEntries = 0
			return c
		}(), ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			switch {
			case tt.want == "" && err != nil:
				t.Errorf("Validate() = %v, want nil", err)
			case tt.want != "" && (err == nil || err.Error() != tt.want):
				t.Errorf("Validate() = %v, want %q", err, tt.want)
			}
		})
	}
}

// TestValidateMessagePrefix keeps every rejection message in the "cpu: "
// namespace so both CLIs and the HTTP 400 bodies stay greppable to the
// source of truth.
func TestValidateMessagePrefix(t *testing.T) {
	c := DefaultConfig(ModeVCFR)
	c.IssueWidth = 0
	if err := c.Validate(); err == nil || !strings.HasPrefix(err.Error(), "cpu: ") {
		t.Errorf("Validate() = %v, want a message prefixed \"cpu: \"", err)
	}
}
