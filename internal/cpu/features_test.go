package cpu

import (
	"errors"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/ilr"
)

func TestITLBLRUBehaviour(t *testing.T) {
	tlb := newITLB(2)
	if !tlb.access(0x1000) { // page 1: miss
		t.Error("cold access hit")
	}
	if tlb.access(0x1040) { // same page: hit
		t.Error("same-page access missed")
	}
	tlb.access(0x2000) // page 2: miss, TLB full
	tlb.access(0x1000) // page 1 touched: page 2 is LRU
	tlb.access(0x3000) // page 3: evicts page 2
	if tlb.access(0x1000) {
		t.Error("recently used page evicted")
	}
	if !tlb.access(0x2000) {
		t.Error("LRU page survived")
	}
	if tlb.misses == 0 || tlb.accesses == 0 {
		t.Error("stats not recorded")
	}
}

func TestPipelineITLBStatsReported(t *testing.T) {
	res := rewriteSrc(t, "fib", fibSrc)
	out := runPipe(t, res, ModeBaseline, nil)
	if out.Stats.ITLBAccesses == 0 {
		t.Error("no iTLB accesses recorded")
	}
	if out.Stats.ITLBMisses == 0 {
		t.Error("no compulsory iTLB misses recorded")
	}
}

func TestPipelineDRC2AbsorbsWalks(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	without := runPipe(t, res, ModeVCFR, func(c *Config) { c.DRCEntries = 4 })
	with := runPipe(t, res, ModeVCFR, func(c *Config) {
		c.DRCEntries = 4 // tiny first level: recurring conflict misses
		c.DRC2Entries = 512
	})
	if with.DRC.L2Lookups == 0 {
		t.Fatal("DRC2 never consulted")
	}
	if with.DRC.L2Hits == 0 {
		t.Error("DRC2 never hit")
	}
	if with.DRC.TableWalks >= without.DRC.TableWalks {
		t.Errorf("DRC2 did not reduce walks: %d vs %d",
			with.DRC.TableWalks, without.DRC.TableWalks)
	}
	if with.Stats.Cycles > without.Stats.Cycles {
		t.Errorf("DRC2 slowed execution: %d vs %d cycles",
			with.Stats.Cycles, without.Stats.Cycles)
	}
}

func TestPipelineContextSwitchFlushes(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	steady := runPipe(t, res, ModeVCFR, nil)
	switching := runPipe(t, res, ModeVCFR, func(c *Config) { c.ContextSwitchEvery = 1000 })
	if switching.DRC.Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
	if switching.DRC.MissRate() <= steady.DRC.MissRate() {
		t.Errorf("flushing did not raise the DRC miss rate: %.3f vs %.3f",
			switching.DRC.MissRate(), steady.DRC.MissRate())
	}
	if switching.Stats.Cycles <= steady.Stats.Cycles {
		t.Errorf("context switches were free: %d vs %d cycles",
			switching.Stats.Cycles, steady.Stats.Cycles)
	}
	// Output unaffected: flushes are a performance event only.
	if string(switching.Out) != string(steady.Out) {
		t.Error("context switching changed program output")
	}
}

func TestPipelineSplitDRCConfig(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	split := runPipe(t, res, ModeVCFR, func(c *Config) { c.DRCSplit = true })
	if split.DRC.Lookups == 0 {
		t.Fatal("split DRC unused")
	}
	if string(split.Out) != "144000" {
		t.Errorf("split DRC changed output: %q", split.Out)
	}
	// Odd entry count is rejected for split organization.
	cfg := DefaultConfig(ModeVCFR)
	cfg.DRCSplit = true
	cfg.DRCEntries = 127
	if err := cfg.Validate(); err == nil {
		t.Error("odd split DRC accepted")
	}
	cfg = DefaultConfig(ModeVCFR)
	cfg.DRC2Entries = 64
	cfg.DRC2Latency = 0
	if err := cfg.Validate(); err == nil {
		t.Error("DRC2 without latency accepted")
	}
}

// TestPipelineTablePageProtection: a program that tries to read the
// randomization tables from user space must fault — the TLB page-visibility
// bit of Sec. IV-B.
func TestPipelineTablePageProtection(t *testing.T) {
	src := `
.entry main
main:
	movi r2, 0x20000000   ; TableBase
	load r3, [r2+0]       ; user-space read of an invisible page
	halt
`
	img := asm.MustAssemble("snoop", src)
	res, err := ilr.Rewrite(img, ilr.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(res.VCFR, DefaultConfig(ModeVCFR), res.Tables, res.RandRA)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(0)
	if !errors.Is(err, ErrTablePageAccess) {
		t.Errorf("err = %v, want ErrTablePageAccess", err)
	}

	// The same program on the baseline (no tables to protect) just reads
	// zeroes and halts.
	pb, err := New(img, DefaultConfig(ModeBaseline), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Run(0); err != nil {
		t.Errorf("baseline run: %v", err)
	}
}

func TestDRCFlushClearsEntries(t *testing.T) {
	tbl := &fakeTrans{m: map[uint32]uint32{0x9000: 0x100}}
	d := newDRC(8, 1, false, tbl)
	if _, hit, _ := d.lookup(lookupDerand, 0x9000); hit {
		t.Error("cold lookup hit")
	}
	if _, hit, _ := d.lookup(lookupDerand, 0x9000); !hit {
		t.Error("warm lookup missed")
	}
	d.flush()
	if _, hit, _ := d.lookup(lookupDerand, 0x9000); hit {
		t.Error("lookup hit after flush")
	}
	if d.stats.Flushes != 1 {
		t.Errorf("flushes = %d", d.stats.Flushes)
	}
}

func TestDRCProbeDoesNotCountLookups(t *testing.T) {
	tbl := &fakeTrans{m: map[uint32]uint32{0x9000: 0x100}}
	d := newDRC(8, 1, false, tbl)
	d.lookup(lookupDerand, 0x9000) // install
	before := d.stats.Lookups
	if _, hit := d.probe(lookupDerand, 0x9000); !hit {
		t.Error("probe missed resident entry")
	}
	if d.stats.Lookups != before {
		t.Error("probe counted as a lookup")
	}
	if _, hit := d.probe(lookupRand, 0x9000); hit {
		t.Error("probe ignored the direction tag")
	}
}

// fakeTrans is a minimal Translator for DRC unit tests.
type fakeTrans struct{ m map[uint32]uint32 }

func (f *fakeTrans) ToOrig(r uint32) (uint32, bool) { v, ok := f.m[r]; return v, ok }
func (f *fakeTrans) ToRand(o uint32) (uint32, bool) {
	for r, v := range f.m {
		if v == o {
			return r, true
		}
	}
	return 0, false
}
func (f *fakeTrans) Prohibited(uint32) bool { return true }

func TestDRCSplitBanksIsolateDirections(t *testing.T) {
	tbl := &fakeTrans{m: map[uint32]uint32{0x9000: 0x100}}
	d := newDRC(8, 1, true, tbl)
	d.lookup(lookupDerand, 0x9000)
	// The derand entry must not satisfy a rand-direction probe even at the
	// same index.
	if _, hit := d.probe(lookupRand, 0x9000); hit {
		t.Error("rand probe hit a derand entry across split banks")
	}
	if _, hit := d.probe(lookupDerand, 0x9000); !hit {
		t.Error("derand probe missed its own bank")
	}
}

// TestPipelineRASMispredictPath covers the return-address-stack mispredict
// path: deep recursion overflowing a tiny RAS forces mispredicted returns.
func TestPipelineRASMispredictPath(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	out := runPipe(t, res, ModeVCFR, func(c *Config) { c.RASDepth = 2 })
	if out.BPred.RASMispred == 0 {
		t.Error("tiny RAS never mispredicted despite 6-deep recursion")
	}
	if string(out.Out) != "144000" {
		t.Errorf("output corrupted by RAS pressure: %q", out.Out)
	}
}

// TestPipelineFetchCrossLineInstruction: an instruction straddling a cache
// line charges both lines.
func TestPipelineFetchCrossLineInstruction(t *testing.T) {
	// 60 bytes of nops (1 B each), then a 6-byte movi straddling the first
	// 64-byte line boundary.
	src := ".entry main\nmain:\n"
	for i := 0; i < 60; i++ {
		src += "\tnop\n"
	}
	src += "\tmovi r1, 305419896\n\thalt\n"
	img := asm.MustAssemble("straddle", src)
	p, err := New(img, DefaultConfig(ModeBaseline), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.FetchLines < 2 {
		t.Errorf("fetched %d lines, want >= 2 (straddling movi)", out.Stats.FetchLines)
	}
	if p.State().R[1] != 305419896 {
		t.Errorf("straddling instruction executed wrong: r1 = %d", p.State().R[1])
	}
}
