package isa

import (
	"strings"
	"testing"
)

func TestOpMetadataConsistency(t *testing.T) {
	for op := OpInvalid + 1; op < numOps; op++ {
		info := opTable[op]
		if info.name == "" {
			t.Errorf("opcode %#02x has no table entry", uint8(op))
			continue
		}
		if info.length < 1 || info.length > MaxLength {
			t.Errorf("%s: length %d out of range", info.name, info.length)
		}
		if info.class == 0 {
			t.Errorf("%s: missing class", info.name)
		}
		if info.hasTarget && info.length != 5 {
			t.Errorf("%s: has target but length %d != 5", info.name, info.length)
		}
	}
}

func TestOpInvalidRejected(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid.Valid() = true")
	}
	if numOps.Valid() {
		t.Error("numOps.Valid() = true")
	}
	if Op(0xff).Valid() {
		t.Error("Op(0xff).Valid() = true")
	}
	if got := Op(0xff).String(); !strings.Contains(got, "0xff") {
		t.Errorf("invalid op String() = %q, want hex byte", got)
	}
}

func TestClassPredicates(t *testing.T) {
	tests := []struct {
		op       Op
		class    Class
		indirect bool
	}{
		{OpAdd, ClassSeq, false},
		{OpJmp, ClassJump, false},
		{OpJne, ClassBranch, false},
		{OpCall, ClassCall, false},
		{OpRet, ClassRet, true},
		{OpJmpR, ClassJumpR, true},
		{OpCallR, ClassCallR, true},
		{OpHalt, ClassHalt, false},
	}
	for _, tt := range tests {
		if got := tt.op.ClassOf(); got != tt.class {
			t.Errorf("%s: class = %v, want %v", tt.op, got, tt.class)
		}
		if got := tt.op.ClassOf().IsIndirect(); got != tt.indirect {
			t.Errorf("%s: IsIndirect = %v, want %v", tt.op, got, tt.indirect)
		}
	}
	if ClassSeq.IsControl() {
		t.Error("ClassSeq.IsControl() = true")
	}
	if !ClassRet.IsControl() {
		t.Error("ClassRet.IsControl() = false")
	}
}

func TestRegString(t *testing.T) {
	tests := []struct {
		r    Reg
		want string
	}{
		{0, "r0"},
		{7, "r7"},
		{RegBP, "bp"},
		{RegSP, "sp"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Reg(%d).String() = %q, want %q", tt.r, got, tt.want)
		}
	}
	if Reg(16).Valid() {
		t.Error("Reg(16).Valid() = true")
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpRet}, "ret"},
		{Inst{Op: OpMovRI, Rd: 3, Imm: -7}, "movi r3, -7"},
		{Inst{Op: OpAdd, Rd: 1, Rs: 2}, "add r1, r2"},
		{Inst{Op: OpLoad, Rd: 4, Rs: RegSP, Imm: 8}, "load r4, [sp+8]"},
		{Inst{Op: OpStore, Rd: RegBP, Rs: 0, Imm: -4}, "store [bp-4], r0"},
		{Inst{Op: OpJne, Target: 0x1234}, "jne 0x1234"},
		{Inst{Op: OpCall, Target: 0x100}, "call 0x100"},
		{Inst{Op: OpPush, Rd: RegBP}, "push bp"},
		{Inst{Op: OpSys, Imm: SysPutChar}, "sys 1"},
		{Inst{Op: OpLoadR, Rd: 2, Rs: 3, Rt: 4}, "loadr r2, [r3+r4]"},
		{Inst{Op: OpShlI, Rd: 5, Imm: 3}, "shli r5, 3"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNextAddr(t *testing.T) {
	in := Inst{Op: OpMovRI, Rd: 1, Imm: 42, Addr: 0x100}
	if got := in.NextAddr(); got != 0x106 {
		t.Errorf("NextAddr = %#x, want 0x106", got)
	}
}
