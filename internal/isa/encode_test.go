package isa

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleInstructions returns one representative instruction per opcode, with
// operands exercising sign extension and register-field packing.
func sampleInstructions() []Inst {
	return []Inst{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpRet},
		{Op: OpSys, Imm: SysWriteInt},
		{Op: OpMovRR, Rd: 15, Rs: 1},
		{Op: OpMovRI, Rd: 7, Imm: -123456789},
		{Op: OpAdd, Rd: 1, Rs: 2},
		{Op: OpSub, Rd: 3, Rs: 4},
		{Op: OpAnd, Rd: 5, Rs: 6},
		{Op: OpOr, Rd: 7, Rs: 8},
		{Op: OpXor, Rd: 9, Rs: 10},
		{Op: OpShl, Rd: 11, Rs: 12},
		{Op: OpShr, Rd: 13, Rs: 14},
		{Op: OpSar, Rd: 15, Rs: 0},
		{Op: OpMul, Rd: 2, Rs: 3},
		{Op: OpDiv, Rd: 4, Rs: 5},
		{Op: OpMod, Rd: 6, Rs: 7},
		{Op: OpNeg, Rd: 8},
		{Op: OpNot, Rd: 9},
		{Op: OpAddI, Rd: 1, Imm: -32768},
		{Op: OpSubI, Rd: 2, Imm: 32767},
		{Op: OpAndI, Rd: 3, Imm: -1},
		{Op: OpOrI, Rd: 4, Imm: 255},
		{Op: OpXorI, Rd: 5, Imm: -256},
		{Op: OpShlI, Rd: 6, Imm: 31},
		{Op: OpShrI, Rd: 7, Imm: 1},
		{Op: OpSarI, Rd: 8, Imm: 16},
		{Op: OpCmp, Rd: 9, Rs: 10},
		{Op: OpCmpI, Rd: 11, Imm: -42},
		{Op: OpTest, Rd: 12, Rs: 13},
		{Op: OpLoad, Rd: 1, Rs: RegSP, Imm: 4},
		{Op: OpStore, Rd: RegBP, Rs: 2, Imm: -8},
		{Op: OpLoadB, Rd: 3, Rs: 4, Imm: 100},
		{Op: OpStoreB, Rd: 5, Rs: 6, Imm: -100},
		{Op: OpLea, Rd: 7, Rs: 8, Imm: 64},
		{Op: OpLoadR, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpStoreR, Rd: 4, Rs: 5, Rt: 6},
		{Op: OpPush, Rd: RegBP},
		{Op: OpPop, Rd: RegBP},
		{Op: OpJmp, Target: 0xdeadbeef},
		{Op: OpJe, Target: 0},
		{Op: OpJne, Target: 0xffffffff},
		{Op: OpJl, Target: 0x1000},
		{Op: OpJge, Target: 0x2000},
		{Op: OpJg, Target: 0x3000},
		{Op: OpJle, Target: 0x4000},
		{Op: OpJb, Target: 0x5000},
		{Op: OpJae, Target: 0x6000},
		{Op: OpCall, Target: 0x8000},
		{Op: OpJmpR, Rd: 1},
		{Op: OpCallR, Rd: 2},
	}
}

func TestEncodeDecodeRoundTripAllOpcodes(t *testing.T) {
	samples := sampleInstructions()
	covered := make(map[Op]bool, len(samples))
	for _, want := range samples {
		covered[want.Op] = true
		enc := Encode(nil, want)
		if len(enc) != want.Op.Length() {
			t.Errorf("%s: encoded length %d, want %d", want.Op, len(enc), want.Op.Length())
		}
		got, err := Decode(enc, 0x4000)
		if err != nil {
			t.Errorf("%s: Decode: %v", want.Op, err)
			continue
		}
		want.Addr = 0x4000
		if got != want {
			t.Errorf("round trip mismatch:\n got  %+v\n want %+v", got, want)
		}
	}
	for op := OpInvalid + 1; op < numOps; op++ {
		if !covered[op] {
			t.Errorf("opcode %s not covered by round-trip samples", op)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"zero byte", []byte{0x00}, ErrBadOpcode},
		{"undefined opcode", []byte{0xee}, ErrBadOpcode},
		{"truncated movi", Encode(nil, Inst{Op: OpMovRI, Rd: 1, Imm: 5})[:3], ErrTruncated},
		{"truncated jmp", Encode(nil, Inst{Op: OpJmp, Target: 0x100})[:2], ErrTruncated},
		{"push bad reg", []byte{byte(OpPush), 16}, ErrBadOperand},
		{"movi bad reg", []byte{byte(OpMovRI), 200, 0, 0, 0, 0}, ErrBadOperand},
		{"loadr bad index", []byte{byte(OpLoadR), 0x12, 99}, ErrBadOperand},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Decode(tt.buf, 0)
			if !errors.Is(err, tt.want) {
				t.Errorf("Decode error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeStreamOfConcatenatedInstructions(t *testing.T) {
	samples := sampleInstructions()
	var code []byte
	for _, in := range samples {
		code = Encode(code, in)
	}
	addr := uint32(0x1000)
	off := 0
	for i, want := range samples {
		got, err := Decode(code[off:], addr)
		if err != nil {
			t.Fatalf("inst %d: %v", i, err)
		}
		want.Addr = addr
		if got != want {
			t.Fatalf("inst %d mismatch:\n got  %+v\n want %+v", i, got, want)
		}
		off += got.Len()
		addr += uint32(got.Len())
	}
	if off != len(code) {
		t.Errorf("consumed %d of %d bytes", off, len(code))
	}
}

func TestPatchTarget(t *testing.T) {
	code := Encode(nil, Inst{Op: OpCall, Target: 0x1111})
	code = Encode(code, Inst{Op: OpRet})
	if err := PatchTarget(code, 0, 0xcafebabe); err != nil {
		t.Fatalf("PatchTarget: %v", err)
	}
	in, err := Decode(code, 0)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if in.Target != 0xcafebabe {
		t.Errorf("patched target = %#x, want 0xcafebabe", in.Target)
	}

	if err := PatchTarget(code, 5, 0); err == nil {
		t.Error("PatchTarget on ret succeeded, want error")
	}
	if err := PatchTarget(code, -1, 0); err == nil {
		t.Error("PatchTarget at -1 succeeded, want error")
	}
	if err := PatchTarget(code[:3], 0, 0); err == nil {
		t.Error("PatchTarget on truncated buffer succeeded, want error")
	}
}

// TestQuickEncodeDecodeRegImm property-tests the reg-imm family: any register
// and 16-bit immediate round-trips exactly, including sign extension.
func TestQuickEncodeDecodeRegImm(t *testing.T) {
	f := func(r uint8, imm int16, opSel uint8) bool {
		ops := []Op{OpAddI, OpSubI, OpAndI, OpOrI, OpXorI, OpCmpI}
		in := Inst{
			Op:  ops[int(opSel)%len(ops)],
			Rd:  Reg(r % NumRegs),
			Imm: int32(imm),
		}
		got, err := Decode(Encode(nil, in), 0)
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeDecodeTransfers property-tests that any 32-bit target
// round-trips through every direct-transfer encoding.
func TestQuickEncodeDecodeTransfers(t *testing.T) {
	f := func(target uint32, opSel uint8) bool {
		ops := []Op{OpJmp, OpJe, OpJne, OpJl, OpJge, OpJg, OpJle, OpJb, OpJae, OpCall}
		in := Inst{Op: ops[int(opSel)%len(ops)], Target: target}
		got, err := Decode(Encode(nil, in), 0)
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDecodeFuzzNeverPanics feeds random byte windows to Decode; it must
// return errors, never panic, and any successful decode must report a length
// within the window it was offered... (length may exceed the window only via
// a bug, which the explicit check catches).
func TestDecodeFuzzNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 64)
	for i := 0; i < 20000; i++ {
		rng.Read(buf)
		n := 1 + rng.Intn(len(buf))
		in, err := Decode(buf[:n], uint32(i))
		if err != nil {
			continue
		}
		if in.Len() > n {
			t.Fatalf("decoded %s with length %d from %d-byte window", in.Op, in.Len(), n)
		}
		if !in.Op.Valid() {
			t.Fatalf("decode succeeded with invalid opcode %v", in.Op)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	code := Encode(nil, Inst{Op: OpLoad, Rd: 1, Rs: 2, Imm: 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(code, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	in := Inst{Op: OpMovRI, Rd: 3, Imm: 123}
	buf := make([]byte, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], in)
	}
}
