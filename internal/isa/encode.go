package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Encoding layout, by opcode family:
//
//	1-byte:  [op]                          nop, halt, ret
//	2-byte:  [op][imm8]                    sys
//	2-byte:  [op][rd<<4|rs]                reg-reg ALU, mov, cmp, test
//	2-byte:  [op][rd]                      neg, not, push, pop, jmpr, callr
//	3-byte:  [op][rd][imm8]                shift-immediate
//	3-byte:  [op][rd<<4|rs][rt]            loadr, storer
//	4-byte:  [op][rd][imm16le]             reg-imm ALU, cmpi
//	4-byte:  [op][rd<<4|rs][off16le]       load, store, loadb, storeb, lea
//	5-byte:  [op][abs32le]                 jmp, jcc, call
//	6-byte:  [op][rd][imm32le]             movi
//
// All multi-byte immediates are little-endian. imm16/off16 are sign-extended
// on decode; imm8 for sys and shifts is zero-extended.

// Decode errors.
var (
	ErrBadOpcode  = errors.New("isa: invalid opcode byte")
	ErrTruncated  = errors.New("isa: truncated instruction")
	ErrBadOperand = errors.New("isa: invalid operand encoding")
)

// Encode appends the encoding of in to dst and returns the extended slice.
// It panics if the instruction is malformed (invalid opcode or register);
// instructions are produced by the assembler and workload generators, which
// validate first.
func Encode(dst []byte, in Inst) []byte {
	op := in.Op
	if !op.Valid() {
		panic(fmt.Sprintf("isa: Encode of invalid opcode %#02x", uint8(op)))
	}
	checkReg := func(r Reg) {
		if !r.Valid() {
			panic(fmt.Sprintf("isa: Encode %s with invalid register %d", op, r))
		}
	}
	switch op {
	case OpNop, OpHalt, OpRet:
		return append(dst, byte(op))
	case OpSys:
		return append(dst, byte(op), byte(in.Imm))
	case OpMovRR, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar,
		OpMul, OpDiv, OpMod, OpCmp, OpTest:
		checkReg(in.Rd)
		checkReg(in.Rs)
		return append(dst, byte(op), byte(in.Rd)<<4|byte(in.Rs))
	case OpNeg, OpNot, OpPush, OpPop, OpJmpR, OpCallR:
		checkReg(in.Rd)
		return append(dst, byte(op), byte(in.Rd))
	case OpShlI, OpShrI, OpSarI:
		checkReg(in.Rd)
		return append(dst, byte(op), byte(in.Rd), byte(in.Imm))
	case OpLoadR, OpStoreR:
		checkReg(in.Rd)
		checkReg(in.Rs)
		checkReg(in.Rt)
		return append(dst, byte(op), byte(in.Rd)<<4|byte(in.Rs), byte(in.Rt))
	case OpAddI, OpSubI, OpAndI, OpOrI, OpXorI, OpCmpI:
		checkReg(in.Rd)
		dst = append(dst, byte(op), byte(in.Rd))
		return binary.LittleEndian.AppendUint16(dst, uint16(in.Imm))
	case OpLoad, OpStore, OpLoadB, OpStoreB, OpLea:
		checkReg(in.Rd)
		checkReg(in.Rs)
		dst = append(dst, byte(op), byte(in.Rd)<<4|byte(in.Rs))
		return binary.LittleEndian.AppendUint16(dst, uint16(in.Imm))
	case OpJmp, OpJe, OpJne, OpJl, OpJge, OpJg, OpJle, OpJb, OpJae, OpCall:
		dst = append(dst, byte(op))
		return binary.LittleEndian.AppendUint32(dst, in.Target)
	case OpMovRI:
		checkReg(in.Rd)
		dst = append(dst, byte(op), byte(in.Rd))
		return binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
	default:
		panic(fmt.Sprintf("isa: Encode: unhandled opcode %s", op))
	}
}

// Decode decodes one instruction from buf, recording addr as its address.
// Register-field validation is strict: a high nibble in a single-register
// encoding fails, so a random byte stream usually fails to decode — exactly
// the property the gadget scanner relies on when it probes misaligned
// offsets.
func Decode(buf []byte, addr uint32) (Inst, error) {
	if len(buf) == 0 {
		return Inst{}, ErrTruncated
	}
	op := Op(buf[0])
	if !op.Valid() {
		return Inst{}, fmt.Errorf("%w: %#02x at %#x", ErrBadOpcode, buf[0], addr)
	}
	n := op.Length()
	if len(buf) < n {
		return Inst{}, fmt.Errorf("%w: %s at %#x needs %d bytes, have %d",
			ErrTruncated, op, addr, n, len(buf))
	}
	in := Inst{Op: op, Addr: addr}
	switch op {
	case OpNop, OpHalt, OpRet:
		// no operands
	case OpSys:
		in.Imm = int32(buf[1])
	case OpMovRR, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar,
		OpMul, OpDiv, OpMod, OpCmp, OpTest:
		in.Rd, in.Rs = Reg(buf[1]>>4), Reg(buf[1]&0x0f)
	case OpNeg, OpNot, OpPush, OpPop, OpJmpR, OpCallR:
		if buf[1] >= NumRegs {
			return Inst{}, fmt.Errorf("%w: %s reg %d at %#x", ErrBadOperand, op, buf[1], addr)
		}
		in.Rd = Reg(buf[1])
	case OpShlI, OpShrI, OpSarI:
		if buf[1] >= NumRegs {
			return Inst{}, fmt.Errorf("%w: %s reg %d at %#x", ErrBadOperand, op, buf[1], addr)
		}
		in.Rd = Reg(buf[1])
		in.Imm = int32(buf[2])
	case OpLoadR, OpStoreR:
		in.Rd, in.Rs = Reg(buf[1]>>4), Reg(buf[1]&0x0f)
		if buf[2] >= NumRegs {
			return Inst{}, fmt.Errorf("%w: %s index reg %d at %#x", ErrBadOperand, op, buf[2], addr)
		}
		in.Rt = Reg(buf[2])
	case OpAddI, OpSubI, OpAndI, OpOrI, OpXorI, OpCmpI:
		if buf[1] >= NumRegs {
			return Inst{}, fmt.Errorf("%w: %s reg %d at %#x", ErrBadOperand, op, buf[1], addr)
		}
		in.Rd = Reg(buf[1])
		in.Imm = int32(int16(binary.LittleEndian.Uint16(buf[2:])))
	case OpLoad, OpStore, OpLoadB, OpStoreB, OpLea:
		in.Rd, in.Rs = Reg(buf[1]>>4), Reg(buf[1]&0x0f)
		in.Imm = int32(int16(binary.LittleEndian.Uint16(buf[2:])))
	case OpJmp, OpJe, OpJne, OpJl, OpJge, OpJg, OpJle, OpJb, OpJae, OpCall:
		in.Target = binary.LittleEndian.Uint32(buf[1:])
	case OpMovRI:
		if buf[1] >= NumRegs {
			return Inst{}, fmt.Errorf("%w: movi reg %d at %#x", ErrBadOperand, buf[1], addr)
		}
		in.Rd = Reg(buf[1])
		in.Imm = int32(binary.LittleEndian.Uint32(buf[2:]))
	default:
		return Inst{}, fmt.Errorf("%w: %#02x at %#x", ErrBadOpcode, buf[0], addr)
	}
	return in, nil
}

// PatchTarget overwrites the 32-bit target field of the direct-transfer
// instruction encoded at code[off:]. It is the primitive the ILR rewriter
// uses to relocate direct control transfers.
func PatchTarget(code []byte, off int, target uint32) error {
	if off < 0 || off >= len(code) {
		return fmt.Errorf("isa: PatchTarget offset %d out of range", off)
	}
	op := Op(code[off])
	if !op.HasTarget() {
		return fmt.Errorf("isa: PatchTarget at %d: %s has no target field", off, op)
	}
	if off+op.Length() > len(code) {
		return fmt.Errorf("%w: PatchTarget at %d", ErrTruncated, off)
	}
	binary.LittleEndian.PutUint32(code[off+TargetFieldOffset:], target)
	return nil
}
