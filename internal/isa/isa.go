// Package isa defines VX, a compact variable-length instruction set used by
// the VCFR reproduction as a stand-in for x86.
//
// VX deliberately mirrors the properties of x86 that matter to instruction
// location randomization (ILR) and to hardware-supported virtual control flow
// randomization (VCFR):
//
//   - Variable instruction length (1-6 bytes), so instruction boundaries are
//     byte-granular and unintended instruction sequences exist at misaligned
//     offsets. This is what makes ROP gadget scanning at every byte offset
//     meaningful.
//   - A one-byte RET (like x86 C3), the anchor of classic ROP gadgets.
//   - Explicit stack discipline via PUSH/POP/CALL/RET over a stack-pointer
//     register, including the position-independent-code idiom
//     "call next; pop r" which reads the return address off the stack.
//   - Direct control transfers that encode an absolute 32-bit code address in
//     the instruction bytes (the field the ILR rewriter relocates), plus
//     register-indirect jumps and calls whose targets only exist at run time.
//
// The package defines encodings, instruction metadata, and the decoder; the
// architectural semantics (what each opcode does to machine state) live in
// package emu so that the functional emulator and the cycle-level pipeline
// share one implementation.
package isa

import "fmt"

// Reg identifies one of the 16 general-purpose registers r0-r15.
//
// By software convention (the assembler and workload generators follow it,
// the hardware does not care): r0 holds return values, r1-r3 hold arguments,
// r4-r11 are scratch, r12 is a platform/temporary register, r13 is the frame
// pointer (alias "bp"), r14 is callee-saved, and r15 is the stack pointer
// (alias "sp").
type Reg uint8

// Register aliases used by the calling convention.
const (
	RegRet Reg = 0  // return value
	RegBP  Reg = 13 // frame pointer (alias "bp")
	RegSP  Reg = 15 // stack pointer (alias "sp")

	// NumRegs is the number of architectural general-purpose registers.
	NumRegs = 16
)

// String returns the assembler name of the register ("r4", "bp", "sp").
func (r Reg) String() string {
	switch r {
	case RegBP:
		return "bp"
	case RegSP:
		return "sp"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is a VX opcode. The zero value is not a valid opcode: a zero byte does
// not decode, so zero-filled padding between functions never decodes into an
// instruction stream (unlike x86, where 00 00 is "add [eax], al").
type Op uint8

// VX opcodes. Enum starts at one; 0x00 is reserved as invalid.
const (
	OpInvalid Op = iota // never a legal encoding

	// No-operand instructions (1 byte).
	OpNop  // nop
	OpHalt // stop the machine
	OpRet  // pop return address into PC (1 byte, like x86 C3)

	// System call (2 bytes: op, imm8 syscall number).
	OpSys

	// Data movement.
	OpMovRR // mov rd, rs          (2 bytes)
	OpMovRI // mov rd, imm32       (6 bytes)

	// Register-register ALU (2 bytes: op, regpair). rd = rd OP rs.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSar
	OpMul
	OpDiv
	OpMod

	// Single-register ALU (2 bytes: op, reg).
	OpNeg
	OpNot

	// Register-immediate ALU (4 bytes: op, reg, imm16 sign-extended).
	OpAddI
	OpSubI
	OpAndI
	OpOrI
	OpXorI

	// Shift-immediate (3 bytes: op, reg, imm8).
	OpShlI
	OpShrI
	OpSarI

	// Compare and test: set flags only.
	OpCmp  // cmp rd, rs   (2 bytes)
	OpCmpI // cmp rd, imm16 (4 bytes)
	OpTest // test rd, rs  (2 bytes)

	// Memory access (4 bytes: op, regpair, off16 sign-extended).
	OpLoad   // load  rd, [rs+off]
	OpStore  // store [rd+off], rs
	OpLoadB  // loadb rd, [rs+off]   (zero-extending byte load)
	OpStoreB // storeb [rd+off], rs  (low byte)
	OpLea    // lea rd, [rs+off]     (address arithmetic, no memory access)

	// Indexed memory access (3 bytes: op, regpair(rd,rs), reg rt).
	OpLoadR  // load  rd, [rs+rt]
	OpStoreR // store [rd+rt], rs

	// Stack (2 bytes: op, reg).
	OpPush
	OpPop

	// Direct control transfers (5 bytes: op, abs32 target).
	// The 32-bit target field is the unit the ILR rewriter relocates.
	OpJmp
	OpJe
	OpJne
	OpJl
	OpJge
	OpJg
	OpJle
	OpJb
	OpJae
	OpCall

	// Indirect control transfers (2 bytes: op, reg).
	OpJmpR
	OpCallR

	numOps // sentinel; must stay last
)

// NumOps is the number of defined opcodes (excluding OpInvalid).
const NumOps = int(numOps) - 1

// Class partitions opcodes by their effect on control flow. The fetch unit,
// the CFG builder, the ILR rewriter, and the gadget scanner all branch on it.
type Class uint8

// Control-flow classes.
const (
	ClassSeq    Class = iota + 1 // falls through to the next instruction
	ClassJump                    // unconditional direct jump
	ClassBranch                  // conditional direct branch (taken or fall-through)
	ClassCall                    // direct call (pushes return address)
	ClassRet                     // return (pops return address)
	ClassJumpR                   // register-indirect jump
	ClassCallR                   // register-indirect call
	ClassHalt                    // stops execution; no successor
)

// IsControl reports whether the class transfers control (everything except
// sequential fall-through).
func (c Class) IsControl() bool { return c != ClassSeq }

// IsIndirect reports whether the transfer target is only known at run time.
func (c Class) IsIndirect() bool { return c == ClassJumpR || c == ClassCallR || c == ClassRet }

// opInfo is the static metadata describing one opcode.
type opInfo struct {
	name   string
	length int   // total encoded length in bytes
	class  Class // control-flow class
	// hasTarget marks opcodes whose encoding embeds an absolute 32-bit code
	// address at byte offset 1 (all direct transfers). The rewriter patches
	// this field during randomization.
	hasTarget bool
}

var opTable = [numOps]opInfo{
	OpNop:    {"nop", 1, ClassSeq, false},
	OpHalt:   {"halt", 1, ClassHalt, false},
	OpRet:    {"ret", 1, ClassRet, false},
	OpSys:    {"sys", 2, ClassSeq, false},
	OpMovRR:  {"mov", 2, ClassSeq, false},
	OpMovRI:  {"movi", 6, ClassSeq, false},
	OpAdd:    {"add", 2, ClassSeq, false},
	OpSub:    {"sub", 2, ClassSeq, false},
	OpAnd:    {"and", 2, ClassSeq, false},
	OpOr:     {"or", 2, ClassSeq, false},
	OpXor:    {"xor", 2, ClassSeq, false},
	OpShl:    {"shl", 2, ClassSeq, false},
	OpShr:    {"shr", 2, ClassSeq, false},
	OpSar:    {"sar", 2, ClassSeq, false},
	OpMul:    {"mul", 2, ClassSeq, false},
	OpDiv:    {"div", 2, ClassSeq, false},
	OpMod:    {"mod", 2, ClassSeq, false},
	OpNeg:    {"neg", 2, ClassSeq, false},
	OpNot:    {"not", 2, ClassSeq, false},
	OpAddI:   {"addi", 4, ClassSeq, false},
	OpSubI:   {"subi", 4, ClassSeq, false},
	OpAndI:   {"andi", 4, ClassSeq, false},
	OpOrI:    {"ori", 4, ClassSeq, false},
	OpXorI:   {"xori", 4, ClassSeq, false},
	OpShlI:   {"shli", 3, ClassSeq, false},
	OpShrI:   {"shri", 3, ClassSeq, false},
	OpSarI:   {"sari", 3, ClassSeq, false},
	OpCmp:    {"cmp", 2, ClassSeq, false},
	OpCmpI:   {"cmpi", 4, ClassSeq, false},
	OpTest:   {"test", 2, ClassSeq, false},
	OpLoad:   {"load", 4, ClassSeq, false},
	OpStore:  {"store", 4, ClassSeq, false},
	OpLoadB:  {"loadb", 4, ClassSeq, false},
	OpStoreB: {"storeb", 4, ClassSeq, false},
	OpLea:    {"lea", 4, ClassSeq, false},
	OpLoadR:  {"loadr", 3, ClassSeq, false},
	OpStoreR: {"storer", 3, ClassSeq, false},
	OpPush:   {"push", 2, ClassSeq, false},
	OpPop:    {"pop", 2, ClassSeq, false},
	OpJmp:    {"jmp", 5, ClassJump, true},
	OpJe:     {"je", 5, ClassBranch, true},
	OpJne:    {"jne", 5, ClassBranch, true},
	OpJl:     {"jl", 5, ClassBranch, true},
	OpJge:    {"jge", 5, ClassBranch, true},
	OpJg:     {"jg", 5, ClassBranch, true},
	OpJle:    {"jle", 5, ClassBranch, true},
	OpJb:     {"jb", 5, ClassBranch, true},
	OpJae:    {"jae", 5, ClassBranch, true},
	OpCall:   {"call", 5, ClassCall, true},
	OpJmpR:   {"jmpr", 2, ClassJumpR, false},
	OpCallR:  {"callr", 2, ClassCallR, false},
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// String returns the assembler mnemonic for the opcode.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%#02x)", uint8(op))
	}
	return opTable[op].name
}

// Length returns the encoded length of the opcode in bytes. It panics on an
// invalid opcode; callers decode first, and decoding rejects invalid bytes.
func (op Op) Length() int {
	if !op.Valid() {
		panic(fmt.Sprintf("isa: Length of invalid opcode %#02x", uint8(op)))
	}
	return opTable[op].length
}

// ClassOf returns the control-flow class of the opcode.
func (op Op) ClassOf() Class {
	if !op.Valid() {
		return ClassSeq
	}
	return opTable[op].class
}

// HasTarget reports whether the opcode encodes an absolute 32-bit code
// address (all direct jumps, branches, and calls).
func (op Op) HasTarget() bool {
	return op.Valid() && opTable[op].hasTarget
}

// MaxLength is the longest VX encoding in bytes (movi's 6).
const MaxLength = 6

// TargetFieldOffset is the byte offset of the 32-bit target field inside a
// direct-transfer encoding. All direct transfers place the target immediately
// after the opcode byte.
const TargetFieldOffset = 1

// Syscall numbers accepted by OpSys. The tiny "OS" gives workloads
// deterministic I/O so that functional equivalence of a randomized binary can
// be checked by comparing output streams.
const (
	SysExit     = 0 // terminate; r1 = exit code
	SysPutChar  = 1 // write low byte of r1 to the output stream
	SysGetChar  = 2 // read one byte from the input stream into r0 (-1 on EOF)
	SysWriteInt = 3 // write r1 as decimal text to the output stream
)

// Inst is one decoded instruction.
type Inst struct {
	Op     Op
	Rd     Reg    // destination / first register operand
	Rs     Reg    // source / second register operand
	Rt     Reg    // index register (OpLoadR/OpStoreR only)
	Imm    int32  // immediate operand (sign-extended where applicable)
	Target uint32 // absolute code target for direct transfers
	Addr   uint32 // address the instruction was decoded from
}

// Len returns the encoded length of the instruction in bytes.
func (in Inst) Len() int { return in.Op.Length() }

// Class returns the control-flow class of the instruction.
func (in Inst) Class() Class { return in.Op.ClassOf() }

// NextAddr returns the address of the instruction that follows in the
// original (sequential) layout.
func (in Inst) NextAddr() uint32 { return in.Addr + uint32(in.Len()) }

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpRet:
		return in.Op.String()
	case OpSys:
		return fmt.Sprintf("sys %d", in.Imm)
	case OpMovRR, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar,
		OpMul, OpDiv, OpMod, OpCmp, OpTest:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs)
	case OpMovRI:
		return fmt.Sprintf("movi %s, %d", in.Rd, in.Imm)
	case OpNeg, OpNot, OpPush, OpPop, OpJmpR, OpCallR:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	case OpAddI, OpSubI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpSarI, OpCmpI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case OpLoad, OpLoadB, OpLea:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Rd, in.Rs, in.Imm)
	case OpStore, OpStoreB:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, in.Rd, in.Imm, in.Rs)
	case OpLoadR:
		return fmt.Sprintf("loadr %s, [%s+%s]", in.Rd, in.Rs, in.Rt)
	case OpStoreR:
		return fmt.Sprintf("storer [%s+%s], %s", in.Rd, in.Rt, in.Rs)
	case OpJmp, OpJe, OpJne, OpJl, OpJge, OpJg, OpJle, OpJb, OpJae, OpCall:
		return fmt.Sprintf("%s %#x", in.Op, in.Target)
	default:
		return fmt.Sprintf("%s ?", in.Op)
	}
}
