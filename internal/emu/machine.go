package emu

import (
	"errors"
	"fmt"

	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// Mode selects how the Machine maps logical instruction addresses to stored
// instruction bytes.
type Mode int

// Execution modes.
const (
	// ModeNative runs an image whose layout and control flow agree (the
	// original binary, before randomization).
	ModeNative Mode = iota + 1

	// ModeScattered runs a completely ILR-randomized image in which the
	// instruction originally at U is stored at Translator.ToRand(U). The
	// machine executes logically in the original space and fetches each
	// instruction's bytes from its scattered location — the zero-cost
	// address-mapping assumption of the paper's naive hardware ILR (Sec. III).
	ModeScattered

	// ModeVCFR runs a VCFR image: original storage layout, but direct
	// control-transfer targets, code constants, and data code-words rewritten
	// into the randomized space. Taken targets are de-randomized at fetch,
	// calls push randomized return addresses, and the stack bitmap
	// auto-de-randomizes explicit loads of return-address slots.
	ModeVCFR

	// ModeEmulatedILR is ModeScattered plus the software-emulation cost
	// model: every guest instruction pays the interpreter's dispatch,
	// decode, and mediation cost in host cycles (the paper's Fig. 2
	// baseline).
	ModeEmulatedILR
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeScattered:
		return "scattered"
	case ModeVCFR:
		return "vcfr"
	case ModeEmulatedILR:
		return "emulated-ilr"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DefaultStackTop is where the stack pointer starts if the config does not
// override it. The stack grows down from just under 256 MiB.
const DefaultStackTop = 0x0fff_fff0

// DefaultMaxSteps bounds runaway programs.
const DefaultMaxSteps = 500_000_000

// Config configures a Machine run.
type Config struct {
	Mode Mode

	// Trans supplies the randomization tables. Required for every mode
	// except ModeNative.
	Trans Translator

	// RandRA maps original return addresses to their randomized values for
	// call sites whose return address the rewriter proved safe to
	// randomize. Nil disables return-address randomization (ModeVCFR).
	RandRA map[uint32]uint32

	// Cost is the host-cycle model for ModeEmulatedILR. Nil selects
	// DefaultCostModel.
	Cost *CostModel

	StackTop uint32 // initial stack pointer; DefaultStackTop if zero
	MaxSteps uint64 // instruction budget; DefaultMaxSteps if zero
	Input    []byte // bytes served to SysGetChar
}

// Stats aggregates dynamic execution counts.
type Stats struct {
	Instructions uint64
	Taken        uint64 // executed taken control transfers
	Calls        uint64
	Rets         uint64
	IndirectCF   uint64 // executed indirect transfers (jmpr/callr/ret)
	Loads        uint64
	Stores       uint64
	Syscalls     uint64
	HostCycles   uint64 // accumulated cost-model cycles (ModeEmulatedILR)
	Unrandomized uint64 // instructions executed at un-randomized addresses (VCFR failover)
}

// RunResult is the outcome of Machine.Run.
type RunResult struct {
	Stats    Stats
	Out      []byte
	ExitCode uint32
}

// ErrStepLimit reports that the instruction budget was exhausted before the
// program halted.
var ErrStepLimit = errors.New("emu: step limit exceeded")

// ErrControlViolation reports a control transfer to a prohibited
// un-randomized address — the randomized-tag check of Sec. IV-A, which is
// what turns a ROP attempt into a fault instead of an exploit.
var ErrControlViolation = errors.New("emu: control transfer to prohibited un-randomized address")

// Machine interprets a loaded program in one of the four modes.
type Machine struct {
	cfg    Config
	state  *State
	mem    *program.AddressSpace
	pc     uint32 // logical PC: original-space cursor (UPC under VCFR)
	inRand bool   // VCFR: currently executing at a randomized (mapped) address
	bitmap map[uint32]bool
	stats  Stats
	cost   *CostModel
}

// NewMachine loads img into a fresh address space and prepares a machine.
func NewMachine(img *program.Image, cfg Config) (*Machine, error) {
	if cfg.Mode < ModeNative || cfg.Mode > ModeEmulatedILR {
		return nil, fmt.Errorf("emu: invalid mode %d", cfg.Mode)
	}
	if cfg.Mode != ModeNative && cfg.Trans == nil {
		return nil, fmt.Errorf("emu: mode %v requires a Translator", cfg.Mode)
	}
	if cfg.StackTop == 0 {
		cfg.StackTop = DefaultStackTop
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	mem := program.NewAddressSpace()
	mem.LoadImage(img)
	st := NewState(mem)
	st.In = cfg.Input
	st.SetSP(cfg.StackTop)

	m := &Machine{
		cfg:   cfg,
		state: st,
		mem:   mem,
		pc:    img.Entry,
		cost:  cfg.Cost,
	}
	if m.cost == nil {
		m.cost = DefaultCostModel()
	}
	// A scattered image's entry point is a randomized-space address; the
	// machine's cursor lives in the logical (original) space.
	if cfg.Mode == ModeScattered || cfg.Mode == ModeEmulatedILR {
		if orig, ok := cfg.Trans.ToOrig(img.Entry); ok {
			m.pc = orig
		}
	}
	if cfg.Mode == ModeVCFR {
		m.inRand = true
		m.bitmap = make(map[uint32]bool)
		st.Hooks = Hooks{
			ReturnAddr: m.vcfrReturnAddr,
			LoadedWord: m.vcfrLoadedWord,
			StoredWord: m.vcfrStoredWord,
		}
	}
	return m, nil
}

// State exposes the architectural state (tests and the attack harness use it
// to inject payloads).
func (m *Machine) State() *State { return m.state }

// Mem exposes the machine's memory.
func (m *Machine) Mem() *program.AddressSpace { return m.mem }

// PC returns the current logical (original-space) program counter.
func (m *Machine) PC() uint32 { return m.pc }

func (m *Machine) vcfrReturnAddr(next uint32) uint32 {
	if r, ok := m.cfg.RandRA[next]; ok {
		return r
	}
	return next
}

func (m *Machine) vcfrLoadedWord(addr, val uint32) uint32 {
	if !m.bitmap[addr] {
		return val
	}
	if orig, ok := m.cfg.Trans.ToOrig(val); ok {
		return orig
	}
	return val
}

func (m *Machine) vcfrStoredWord(addr, val uint32, isCallPush bool) {
	if isCallPush {
		if _, ok := m.cfg.Trans.ToOrig(val); ok {
			m.bitmap[addr] = true
			return
		}
	}
	delete(m.bitmap, addr)
}

// storageAddr maps the logical (original-space) pc to where the instruction
// bytes actually live.
func (m *Machine) storageAddr(pc uint32) uint32 {
	switch m.cfg.Mode {
	case ModeScattered, ModeEmulatedILR:
		if r, ok := m.cfg.Trans.ToRand(pc); ok {
			return r
		}
	}
	return pc
}

// redirect resolves a taken architectural target to the next logical pc.
// Under VCFR the target is typically a randomized-space address; an
// un-randomized target is the failover path and must pass the
// randomized-tag check.
func (m *Machine) redirect(target uint32) (uint32, error) {
	if m.cfg.Mode != ModeVCFR {
		return target, nil
	}
	if orig, ok := m.cfg.Trans.ToOrig(target); ok {
		m.inRand = true
		return orig, nil
	}
	if m.cfg.Trans.Prohibited(target) {
		return 0, fmt.Errorf("%w: %#x", ErrControlViolation, target)
	}
	m.inRand = false
	return target, nil
}

// Step executes one instruction. It returns false when the machine halted.
func (m *Machine) Step() (bool, error) {
	if m.state.Halted {
		return false, nil
	}
	in, err := FetchDecode(m.mem, m.storageAddr(m.pc))
	if err != nil {
		return false, err
	}
	in.Addr = m.pc // logical address: return addresses derive from it
	out, err := Exec(m.state, in)
	if err != nil {
		return false, err
	}

	m.stats.Instructions++
	if m.cfg.Mode == ModeEmulatedILR {
		m.stats.HostCycles += m.cost.Cycles(in, out)
	}
	if m.cfg.Mode == ModeVCFR && !m.inRand {
		m.stats.Unrandomized++
	}
	switch out.MemKind {
	case MemLoad:
		m.stats.Loads++
	case MemStore:
		m.stats.Stores++
	}
	if in.Op == isa.OpSys {
		m.stats.Syscalls++
	}
	if out.Taken {
		m.stats.Taken++
		if out.IsCall {
			m.stats.Calls++
		}
		if out.IsRet {
			m.stats.Rets++
		}
		if in.Class().IsIndirect() {
			m.stats.IndirectCF++
		}
		next, err := m.redirect(out.Target)
		if err != nil {
			return false, err
		}
		m.pc = next
	} else {
		m.pc = in.NextAddr()
	}
	return !m.state.Halted, nil
}

// Run executes until halt, fault, or the step budget is exhausted.
func (m *Machine) Run() (RunResult, error) {
	for m.stats.Instructions < m.cfg.MaxSteps {
		running, err := m.Step()
		if err != nil {
			return m.result(), err
		}
		if !running {
			return m.result(), nil
		}
	}
	return m.result(), fmt.Errorf("%w (%d)", ErrStepLimit, m.cfg.MaxSteps)
}

// RunN executes at most n further instructions, returning early on halt.
func (m *Machine) RunN(n uint64) (RunResult, error) {
	end := m.stats.Instructions + n
	for m.stats.Instructions < end {
		running, err := m.Step()
		if err != nil {
			return m.result(), err
		}
		if !running {
			break
		}
	}
	return m.result(), nil
}

func (m *Machine) result() RunResult {
	return RunResult{
		Stats:    m.stats,
		Out:      m.state.Out,
		ExitCode: m.state.ExitCode,
	}
}

// Run loads img and executes it to completion in the given mode — the
// one-call convenience entry point.
func Run(img *program.Image, cfg Config) (RunResult, error) {
	m, err := NewMachine(img, cfg)
	if err != nil {
		return RunResult{}, err
	}
	return m.Run()
}
