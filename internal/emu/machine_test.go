package emu

import (
	"errors"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

const fibSource = `
; print fib(10) = 55
.entry main
main:
	movi r1, 0      ; a
	movi r2, 1      ; b
	movi r3, 10     ; n
loop:
	cmpi r3, 0
	je done
	mov r4, r2
	add r2, r1
	mov r1, r4
	subi r3, 1
	jmp loop
done:
	mov r1, r1
	sys 3           ; write r1 as int
	movi r1, 0
	sys 0
`

func TestMachineRunNative(t *testing.T) {
	img := asm.MustAssemble("fib", fibSource)
	res, err := Run(img, Config{Mode: ModeNative})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(res.Out) != "55" {
		t.Errorf("out = %q, want 55", res.Out)
	}
	if res.ExitCode != 0 {
		t.Errorf("exit = %d", res.ExitCode)
	}
	if res.Stats.Instructions == 0 || res.Stats.Taken == 0 {
		t.Errorf("stats not collected: %+v", res.Stats)
	}
}

func TestMachineRecursion(t *testing.T) {
	img := asm.MustAssemble("fact", `
.entry main
main:
	movi r1, 6
	call fact
	mov r1, r0
	sys 3
	movi r1, 0
	sys 0
.func fact
fact:
	cmpi r1, 1
	jg rec
	movi r0, 1
	ret
rec:
	push r1
	subi r1, 1
	call fact
	pop r1
	mul r0, r1
	ret
`)
	res, err := Run(img, Config{Mode: ModeNative})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(res.Out) != "720" {
		t.Errorf("out = %q, want 720", res.Out)
	}
	if res.Stats.Calls != 6 || res.Stats.Rets != 6 {
		t.Errorf("calls=%d rets=%d, want 6/6", res.Stats.Calls, res.Stats.Rets)
	}
}

func TestMachineEcho(t *testing.T) {
	img := asm.MustAssemble("echo", `
.entry main
main:
	sys 2             ; getchar -> r0
	cmpi r0, -1
	je done
	mov r1, r0
	sys 1             ; putchar
	jmp main
done:
	movi r1, 0
	sys 0
`)
	res, err := Run(img, Config{Mode: ModeNative, Input: []byte("hello")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(res.Out) != "hello" {
		t.Errorf("out = %q", res.Out)
	}
}

func TestMachineIndirectJumpTable(t *testing.T) {
	img := asm.MustAssemble("switch", `
.entry main
main:
	movi r2, 2              ; case selector
	movi r3, table
	shli r2, 2
	loadr r4, [r3+r2]
	jmpr r4
case0: movi r1, '0'
	jmp out
case1: movi r1, '1'
	jmp out
case2: movi r1, '2'
	jmp out
out:
	sys 1
	movi r1, 0
	sys 0
.data
table: .addr case0, case1, case2
`)
	res, err := Run(img, Config{Mode: ModeNative})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(res.Out) != "2" {
		t.Errorf("out = %q, want 2", res.Out)
	}
	if res.Stats.IndirectCF == 0 {
		t.Error("indirect transfer not counted")
	}
}

func TestMachineStepLimit(t *testing.T) {
	img := asm.MustAssemble("spin", ".entry main\nmain: jmp main")
	_, err := Run(img, Config{Mode: ModeNative, MaxSteps: 1000})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestMachineRunN(t *testing.T) {
	img := asm.MustAssemble("spin", ".entry main\nmain: jmp main")
	m, err := NewMachine(img, Config{Mode: ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunN(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions != 100 {
		t.Errorf("instructions = %d, want 100", res.Stats.Instructions)
	}
}

func TestMachineFaultOnGarbageFetch(t *testing.T) {
	img := asm.MustAssemble("fall", ".entry main\nmain: nop") // falls off the end
	_, err := Run(img, Config{Mode: ModeNative})
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *Fault", err)
	}
}

func TestMachineConfigValidation(t *testing.T) {
	img := asm.MustAssemble("m", ".entry main\nmain: halt")
	if _, err := NewMachine(img, Config{Mode: 0}); err == nil {
		t.Error("invalid mode accepted")
	}
	if _, err := NewMachine(img, Config{Mode: ModeVCFR}); err == nil {
		t.Error("VCFR without translator accepted")
	}
	if _, err := NewMachine(img, Config{Mode: ModeScattered}); err == nil {
		t.Error("scattered without translator accepted")
	}
}

// stubTrans is a hand-built Translator for machine-mode tests.
type stubTrans struct {
	o2r, r2o map[uint32]uint32
	prohibit map[uint32]bool
}

func (s *stubTrans) ToOrig(r uint32) (uint32, bool) { v, ok := s.r2o[r]; return v, ok }
func (s *stubTrans) ToRand(o uint32) (uint32, bool) { v, ok := s.o2r[o]; return v, ok }
func (s *stubTrans) Prohibited(o uint32) bool       { return s.prohibit[o] }

// scatter builds a scattered copy of img: instruction i of the original is
// stored at scatterBase + perm(i)*8, and the translator maps both ways.
// Instruction bytes (including direct targets) are unchanged — the machine
// executes logically in the original space.
func scatter(t *testing.T, img *program.Image, scatterBase uint32) (*program.Image, *stubTrans) {
	t.Helper()
	insts, err := asm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	tr := &stubTrans{
		o2r:      make(map[uint32]uint32),
		r2o:      make(map[uint32]uint32),
		prohibit: make(map[uint32]bool),
	}
	buf := make([]byte, len(insts)*8)
	for i, in := range insts {
		// Reverse order with 8-byte strides: deterministic, collision-free.
		slot := uint32(len(insts)-1-i) * 8
		raddr := scatterBase + slot
		tr.o2r[in.Addr] = raddr
		tr.r2o[raddr] = in.Addr
		tr.prohibit[in.Addr] = true
		isa.Encode(buf[slot:slot:slot+8], in)
	}
	out := img.Clone()
	text := out.Text()
	text.Addr = scatterBase
	text.Data = buf
	out.Entry = tr.o2r[img.Entry]
	// Non-text segments stay put; entry must stay inside text for Validate,
	// which it is (mapped entry).
	return out, tr
}

func TestMachineScatteredEquivalence(t *testing.T) {
	orig := asm.MustAssemble("fib", fibSource)
	want, err := Run(orig, Config{Mode: ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	simg, tr := scatter(t, orig, 0x0040_0000)
	m, err := NewMachine(simg, Config{Mode: ModeScattered, Trans: tr})
	if err != nil {
		t.Fatal(err)
	}
	// The scattered machine starts at the original entry (logical space).
	m.pc = orig.Entry
	got, err := m.Run()
	if err != nil {
		t.Fatalf("scattered run: %v", err)
	}
	if string(got.Out) != string(want.Out) {
		t.Errorf("scattered out = %q, native = %q", got.Out, want.Out)
	}
	if got.Stats.Instructions != want.Stats.Instructions {
		t.Errorf("instruction counts differ: %d vs %d",
			got.Stats.Instructions, want.Stats.Instructions)
	}
}

func TestMachineEmulatedILRAccruesHostCycles(t *testing.T) {
	orig := asm.MustAssemble("fib", fibSource)
	simg, tr := scatter(t, orig, 0x0040_0000)
	m, err := NewMachine(simg, Config{Mode: ModeEmulatedILR, Trans: tr})
	if err != nil {
		t.Fatal(err)
	}
	m.pc = orig.Entry
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HostCycles == 0 {
		t.Fatal("no host cycles accrued")
	}
	perInst := float64(res.Stats.HostCycles) / float64(res.Stats.Instructions)
	if perInst < 100 || perInst > 1000 {
		t.Errorf("host cycles per instruction = %.0f, want order 10^2 (Fig. 2 band)", perInst)
	}
}

// buildVCFRCase hand-builds a miniature VCFR program: original layout with
// the call target rewritten into randomized space, a randomized return
// address, and a full prohibition map.
func buildVCFRCase(t *testing.T) (*program.Image, *stubTrans, map[uint32]uint32) {
	t.Helper()
	img := asm.MustAssemble("v", `
.entry main
main:
	movi r1, 'A'
	sys 1
	call fn
	movi r1, 'B'
	sys 1
	movi r1, 0
	sys 0
.func fn
fn:
	movi r1, 'C'
	sys 1
	ret
`)
	insts, err := asm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	tr := &stubTrans{
		o2r:      make(map[uint32]uint32),
		r2o:      make(map[uint32]uint32),
		prohibit: make(map[uint32]bool),
	}
	for i, in := range insts {
		// Arbitrary, collision-free randomized addresses far from the text.
		r := 0x7000_0000 + uint32(i*16) + uint32((i*7)%5)
		tr.o2r[in.Addr] = r
		tr.r2o[r] = in.Addr
		tr.prohibit[in.Addr] = true
	}
	// Rewrite the direct transfer targets (call fn) into randomized space.
	text := img.Text()
	randRA := make(map[uint32]uint32)
	for _, in := range insts {
		if in.Op == isa.OpCall {
			off := int(in.Addr - text.Addr)
			if err := isa.PatchTarget(text.Data, off, tr.o2r[in.Target]); err != nil {
				t.Fatal(err)
			}
			randRA[in.NextAddr()] = tr.o2r[in.NextAddr()]
		}
	}
	return img, tr, randRA
}

func TestMachineVCFREquivalence(t *testing.T) {
	img, tr, randRA := buildVCFRCase(t)
	res, err := Run(img, Config{Mode: ModeVCFR, Trans: tr, RandRA: randRA})
	if err != nil {
		t.Fatalf("VCFR run: %v", err)
	}
	if string(res.Out) != "ACB" {
		t.Errorf("out = %q, want ACB", res.Out)
	}
	if res.Stats.Unrandomized != 0 {
		t.Errorf("unrandomized executions = %d, want 0", res.Stats.Unrandomized)
	}
}

func TestMachineVCFRRandomizedRAOnStack(t *testing.T) {
	img, tr, randRA := buildVCFRCase(t)
	m, err := NewMachine(img, Config{Mode: ModeVCFR, Trans: tr, RandRA: randRA})
	if err != nil {
		t.Fatal(err)
	}
	// Step to just after the call: the stack must hold the RANDOMIZED
	// return address, not the original one (that is the security property:
	// a stack disclosure leaks only randomized addresses).
	for i := 0; i < 3; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ra := m.State().Mem.ReadWord(m.State().SP())
	if _, isRand := tr.ToOrig(ra); !isRand {
		t.Errorf("stack RA %#x is not a randomized address", ra)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMachineVCFRControlViolation(t *testing.T) {
	img, tr, randRA := buildVCFRCase(t)
	// An attacker-style jump to the ORIGINAL address of a randomized
	// instruction must fault with ErrControlViolation.
	m, err := NewMachine(img, Config{Mode: ModeVCFR, Trans: tr, RandRA: randRA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err != nil { // execute movi
		t.Fatal(err)
	}
	fn, _ := img.Lookup("fn")
	m.State().R[9] = fn // original-space address: prohibited
	m.state.Hooks = Hooks{}
	out, err := Exec(m.state, isa.Inst{Op: isa.OpJmpR, Rd: 9, Addr: m.pc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.redirect(out.Target); !errors.Is(err, ErrControlViolation) {
		t.Errorf("redirect to prohibited address: err = %v, want ErrControlViolation", err)
	}
}

func TestMachineVCFRFailoverToUnrandomized(t *testing.T) {
	img, tr, randRA := buildVCFRCase(t)
	fn, _ := img.Lookup("fn")
	// Mark fn's original address as an allowed failover target (an indirect
	// target the rewriter could not prove dead) and jump there.
	tr.prohibit[fn] = false
	m, err := NewMachine(img, Config{Mode: ModeVCFR, Trans: tr, RandRA: randRA})
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.redirect(fn)
	if err != nil {
		t.Fatalf("failover redirect: %v", err)
	}
	if next != fn {
		t.Errorf("failover target = %#x, want %#x", next, fn)
	}
	if m.inRand {
		t.Error("machine still claims randomized space after failover")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeNative: "native", ModeScattered: "scattered",
		ModeVCFR: "vcfr", ModeEmulatedILR: "emulated-ilr", Mode(99): "mode(99)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}
