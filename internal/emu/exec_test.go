package emu

import (
	"testing"
	"testing/quick"

	"vcfr/internal/isa"
	"vcfr/internal/program"
)

func newTestState() *State {
	s := NewState(program.NewAddressSpace())
	s.SetSP(0x1000)
	return s
}

func exec(t *testing.T, s *State, in isa.Inst) Outcome {
	t.Helper()
	out, err := Exec(s, in)
	if err != nil {
		t.Fatalf("Exec(%v): %v", in, err)
	}
	return out
}

func TestExecALUBasics(t *testing.T) {
	s := newTestState()
	exec(t, s, isa.Inst{Op: isa.OpMovRI, Rd: 1, Imm: 10})
	exec(t, s, isa.Inst{Op: isa.OpMovRI, Rd: 2, Imm: 3})
	exec(t, s, isa.Inst{Op: isa.OpAdd, Rd: 1, Rs: 2})
	if s.R[1] != 13 {
		t.Errorf("add: r1 = %d, want 13", s.R[1])
	}
	exec(t, s, isa.Inst{Op: isa.OpMul, Rd: 1, Rs: 2})
	if s.R[1] != 39 {
		t.Errorf("mul: r1 = %d, want 39", s.R[1])
	}
	exec(t, s, isa.Inst{Op: isa.OpDiv, Rd: 1, Rs: 2})
	if s.R[1] != 13 {
		t.Errorf("div: r1 = %d, want 13", s.R[1])
	}
	exec(t, s, isa.Inst{Op: isa.OpMod, Rd: 1, Rs: 2})
	if s.R[1] != 1 {
		t.Errorf("mod: r1 = %d, want 1", s.R[1])
	}
	exec(t, s, isa.Inst{Op: isa.OpNeg, Rd: 1})
	if int32(s.R[1]) != -1 {
		t.Errorf("neg: r1 = %d, want -1", int32(s.R[1]))
	}
	if !s.N || s.Z {
		t.Error("neg flags wrong")
	}
	exec(t, s, isa.Inst{Op: isa.OpNot, Rd: 1})
	if s.R[1] != 0 || !s.Z {
		t.Errorf("not: r1 = %d, Z=%v", s.R[1], s.Z)
	}
}

func TestExecSignedDivision(t *testing.T) {
	s := newTestState()
	s.R[1] = uint32(0xfffffff9) // -7
	s.R[2] = 2
	exec(t, s, isa.Inst{Op: isa.OpDiv, Rd: 1, Rs: 2})
	if int32(s.R[1]) != -3 {
		t.Errorf("-7/2 = %d, want -3 (truncated)", int32(s.R[1]))
	}
	s.R[1] = uint32(0xfffffff9)
	exec(t, s, isa.Inst{Op: isa.OpMod, Rd: 1, Rs: 2})
	if int32(s.R[1]) != -1 {
		t.Errorf("-7%%2 = %d, want -1", int32(s.R[1]))
	}
}

func TestExecDivideByZeroFaults(t *testing.T) {
	for _, op := range []isa.Op{isa.OpDiv, isa.OpMod} {
		s := newTestState()
		s.R[1] = 5
		if _, err := Exec(s, isa.Inst{Op: op, Rd: 1, Rs: 2, Addr: 0x42}); err == nil {
			t.Errorf("%s by zero did not fault", op)
		}
	}
}

func TestExecFlagsCarryOverflow(t *testing.T) {
	tests := []struct {
		name       string
		a, b       uint32
		op         isa.Op
		z, n, c, v bool
	}{
		{"add no flags", 1, 2, isa.OpAdd, false, false, false, false},
		{"add carry", 0xffffffff, 1, isa.OpAdd, true, false, true, false},
		{"add overflow", 0x7fffffff, 1, isa.OpAdd, false, true, false, true},
		{"add neg overflow", 0x80000000, 0x80000000, isa.OpAdd, true, false, true, true},
		{"sub zero", 5, 5, isa.OpSub, true, false, false, false},
		{"sub borrow", 3, 5, isa.OpSub, false, true, true, false},
		{"sub overflow", 0x80000000, 1, isa.OpSub, false, false, false, true},
		{"cmp equal", 7, 7, isa.OpCmp, true, false, false, false},
		{"cmp less unsigned", 2, 9, isa.OpCmp, false, true, true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := newTestState()
			s.R[1], s.R[2] = tt.a, tt.b
			exec(t, s, isa.Inst{Op: tt.op, Rd: 1, Rs: 2})
			if s.Z != tt.z || s.N != tt.n || s.C != tt.c || s.V != tt.v {
				t.Errorf("flags Z=%v N=%v C=%v V=%v, want Z=%v N=%v C=%v V=%v",
					s.Z, s.N, s.C, s.V, tt.z, tt.n, tt.c, tt.v)
			}
			if tt.op == isa.OpCmp && s.R[1] != tt.a {
				t.Error("cmp modified its operand")
			}
		})
	}
}

// TestQuickSubFlagsMatchWideArithmetic cross-checks the sub/cmp flag logic
// against 64-bit reference arithmetic for arbitrary operands.
func TestQuickSubFlagsMatchWideArithmetic(t *testing.T) {
	s := newTestState()
	f := func(a, b uint32) bool {
		s.R[1], s.R[2] = a, b
		exec(t, s, isa.Inst{Op: isa.OpCmp, Rd: 1, Rs: 2})
		res := a - b
		wantZ := res == 0
		wantN := int32(res) < 0
		wantC := uint64(a) < uint64(b)
		wide := int64(int32(a)) - int64(int32(b))
		wantV := wide < -(1<<31) || wide > (1<<31)-1
		return s.Z == wantZ && s.N == wantN && s.C == wantC && s.V == wantV
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickAddFlagsMatchWideArithmetic does the same for addition.
func TestQuickAddFlagsMatchWideArithmetic(t *testing.T) {
	s := newTestState()
	f := func(a, b uint32) bool {
		s.R[1], s.R[2] = a, b
		exec(t, s, isa.Inst{Op: isa.OpAdd, Rd: 1, Rs: 2})
		res := a + b
		wantC := uint64(a)+uint64(b) > 0xffffffff
		wide := int64(int32(a)) + int64(int32(b))
		wantV := wide < -(1<<31) || wide > (1<<31)-1
		return s.R[1] == res && s.C == wantC && s.V == wantV
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExecBranchConditions(t *testing.T) {
	// After cmp r1, r2 with the given values, which branches are taken?
	tests := []struct {
		a, b  uint32
		taken map[isa.Op]bool
	}{
		{5, 5, map[isa.Op]bool{
			isa.OpJe: true, isa.OpJne: false, isa.OpJl: false, isa.OpJge: true,
			isa.OpJg: false, isa.OpJle: true, isa.OpJb: false, isa.OpJae: true}},
		{3, 9, map[isa.Op]bool{
			isa.OpJe: false, isa.OpJne: true, isa.OpJl: true, isa.OpJge: false,
			isa.OpJg: false, isa.OpJle: true, isa.OpJb: true, isa.OpJae: false}},
		{9, 3, map[isa.Op]bool{
			isa.OpJl: false, isa.OpJg: true, isa.OpJb: false, isa.OpJae: true}},
		// signed vs unsigned disagreement: -1 vs 1
		{0xffffffff, 1, map[isa.Op]bool{
			isa.OpJl: true, isa.OpJg: false, isa.OpJb: false, isa.OpJae: true}},
	}
	for _, tt := range tests {
		s := newTestState()
		s.R[1], s.R[2] = tt.a, tt.b
		exec(t, s, isa.Inst{Op: isa.OpCmp, Rd: 1, Rs: 2})
		for op, want := range tt.taken {
			out := exec(t, s, isa.Inst{Op: op, Target: 0x500})
			if out.Taken != want {
				t.Errorf("cmp(%d,%d) then %s: taken = %v, want %v",
					int32(tt.a), int32(tt.b), op, out.Taken, want)
			}
			if out.Taken && out.Target != 0x500 {
				t.Errorf("%s target = %#x", op, out.Target)
			}
		}
	}
}

func TestExecStackAndCall(t *testing.T) {
	s := newTestState()
	s.R[3] = 0xabcd
	out := exec(t, s, isa.Inst{Op: isa.OpPush, Rd: 3})
	if out.MemKind != MemStore || out.MemAddr != 0xffc {
		t.Errorf("push outcome = %+v", out)
	}
	if s.SP() != 0xffc {
		t.Errorf("sp after push = %#x", s.SP())
	}
	s.R[3] = 0
	out = exec(t, s, isa.Inst{Op: isa.OpPop, Rd: 3})
	if s.R[3] != 0xabcd || s.SP() != 0x1000 {
		t.Errorf("pop: r3=%#x sp=%#x", s.R[3], s.SP())
	}
	if out.MemKind != MemLoad {
		t.Error("pop is not a load")
	}

	// call pushes the fall-through address and reports a taken call.
	out = exec(t, s, isa.Inst{Op: isa.OpCall, Target: 0x2000, Addr: 0x100})
	if !out.Taken || !out.IsCall || out.Target != 0x2000 {
		t.Errorf("call outcome = %+v", out)
	}
	if got := s.Mem.ReadWord(s.SP()); got != 0x105 {
		t.Errorf("pushed RA = %#x, want 0x105", got)
	}
	// ret pops it back.
	out = exec(t, s, isa.Inst{Op: isa.OpRet, Addr: 0x2000})
	if !out.Taken || !out.IsRet || out.Target != 0x105 {
		t.Errorf("ret outcome = %+v", out)
	}
}

func TestExecCallRThroughRegister(t *testing.T) {
	s := newTestState()
	s.R[6] = 0x3000
	out := exec(t, s, isa.Inst{Op: isa.OpCallR, Rd: 6, Addr: 0x200})
	if !out.Taken || !out.IsCall || out.Target != 0x3000 {
		t.Errorf("callr outcome = %+v", out)
	}
	if got := s.Mem.ReadWord(s.SP()); got != 0x202 {
		t.Errorf("pushed RA = %#x, want 0x202", got)
	}
	s.R[7] = 0x4000
	out = exec(t, s, isa.Inst{Op: isa.OpJmpR, Rd: 7})
	if !out.Taken || out.IsCall || out.Target != 0x4000 {
		t.Errorf("jmpr outcome = %+v", out)
	}
}

func TestExecMemoryOps(t *testing.T) {
	s := newTestState()
	s.R[1] = 0x5000
	s.R[2] = 0xdeadbeef
	exec(t, s, isa.Inst{Op: isa.OpStore, Rd: 1, Rs: 2, Imm: 8})
	if got := s.Mem.ReadWord(0x5008); got != 0xdeadbeef {
		t.Errorf("store: mem = %#x", got)
	}
	exec(t, s, isa.Inst{Op: isa.OpLoad, Rd: 3, Rs: 1, Imm: 8})
	if s.R[3] != 0xdeadbeef {
		t.Errorf("load: r3 = %#x", s.R[3])
	}
	exec(t, s, isa.Inst{Op: isa.OpStoreB, Rd: 1, Rs: 2, Imm: 100})
	exec(t, s, isa.Inst{Op: isa.OpLoadB, Rd: 4, Rs: 1, Imm: 100})
	if s.R[4] != 0xef {
		t.Errorf("loadb: r4 = %#x, want 0xef", s.R[4])
	}
	s.R[5] = 4
	exec(t, s, isa.Inst{Op: isa.OpStoreR, Rd: 1, Rs: 2, Rt: 5})
	exec(t, s, isa.Inst{Op: isa.OpLoadR, Rd: 6, Rs: 1, Rt: 5})
	if s.R[6] != 0xdeadbeef {
		t.Errorf("loadr: r6 = %#x", s.R[6])
	}
	exec(t, s, isa.Inst{Op: isa.OpLea, Rd: 7, Rs: 1, Imm: -16})
	if s.R[7] != 0x4ff0 {
		t.Errorf("lea: r7 = %#x", s.R[7])
	}
}

func TestExecSyscalls(t *testing.T) {
	s := newTestState()
	s.In = []byte("AB")
	s.R[1] = 'x'
	exec(t, s, isa.Inst{Op: isa.OpSys, Imm: isa.SysPutChar})
	neg := int32(-42)
	s.R[1] = uint32(neg)
	exec(t, s, isa.Inst{Op: isa.OpSys, Imm: isa.SysWriteInt})
	if string(s.Out) != "x-42" {
		t.Errorf("out = %q", s.Out)
	}
	exec(t, s, isa.Inst{Op: isa.OpSys, Imm: isa.SysGetChar})
	if s.R[0] != 'A' {
		t.Errorf("getchar = %#x", s.R[0])
	}
	exec(t, s, isa.Inst{Op: isa.OpSys, Imm: isa.SysGetChar})
	exec(t, s, isa.Inst{Op: isa.OpSys, Imm: isa.SysGetChar})
	if s.R[0] != 0xffffffff {
		t.Errorf("getchar at EOF = %#x, want EOF marker", s.R[0])
	}
	s.R[1] = 7
	exec(t, s, isa.Inst{Op: isa.OpSys, Imm: isa.SysExit})
	if !s.Halted || s.ExitCode != 7 {
		t.Errorf("exit: halted=%v code=%d", s.Halted, s.ExitCode)
	}
	if _, err := Exec(newTestState(), isa.Inst{Op: isa.OpSys, Imm: 99}); err == nil {
		t.Error("unknown syscall did not fault")
	}
}

func TestExecHooks(t *testing.T) {
	s := newTestState()
	var storedAddrs []uint32
	var callPushes int
	s.Hooks = Hooks{
		ReturnAddr: func(next uint32) uint32 { return next ^ 0xf0000000 },
		LoadedWord: func(addr, val uint32) uint32 { return val + 1 },
		StoredWord: func(addr, val uint32, isCallPush bool) {
			storedAddrs = append(storedAddrs, addr)
			if isCallPush {
				callPushes++
			}
		},
	}
	exec(t, s, isa.Inst{Op: isa.OpCall, Target: 0x9000, Addr: 0x100})
	if got := s.Mem.ReadWord(s.SP()); got != 0x105^0xf0000000 {
		t.Errorf("hooked RA = %#x", got)
	}
	if callPushes != 1 {
		t.Errorf("callPushes = %d", callPushes)
	}
	// Explicit pop goes through LoadedWord; ret must not.
	sp := s.SP()
	exec(t, s, isa.Inst{Op: isa.OpPop, Rd: 4})
	if s.R[4] != (0x105^0xf0000000)+1 {
		t.Errorf("hooked pop = %#x", s.R[4])
	}
	s.SetSP(sp)
	out := exec(t, s, isa.Inst{Op: isa.OpRet})
	if out.Target != 0x105^0xf0000000 {
		t.Errorf("ret target = %#x: LoadedWord hook must not apply to ret", out.Target)
	}
	// Plain store observed, not a call push.
	s.R[1] = 0x5000
	exec(t, s, isa.Inst{Op: isa.OpStore, Rd: 1, Rs: 2})
	if callPushes != 1 || len(storedAddrs) != 2 {
		t.Errorf("store hook counts: pushes=%d stores=%d", callPushes, len(storedAddrs))
	}
}

func TestFetchDecode(t *testing.T) {
	mem := program.NewAddressSpace()
	code := isa.Encode(nil, isa.Inst{Op: isa.OpMovRI, Rd: 2, Imm: 77})
	mem.WriteBytes(0x800, code)
	in, err := FetchDecode(mem, 0x800)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.OpMovRI || in.Imm != 77 || in.Addr != 0x800 {
		t.Errorf("FetchDecode = %+v", in)
	}
	if _, err := FetchDecode(mem, 0x900); err == nil {
		t.Error("FetchDecode of zeroes succeeded")
	}
}

func TestAppendInt(t *testing.T) {
	tests := []struct {
		v    int32
		want string
	}{
		{0, "0"}, {7, "7"}, {-7, "-7"}, {2147483647, "2147483647"},
		{-2147483648, "-2147483648"}, {1000, "1000"},
	}
	for _, tt := range tests {
		if got := string(appendInt(nil, tt.v)); got != tt.want {
			t.Errorf("appendInt(%d) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
