// Package emu implements the functional semantics of the VX ISA and the
// instruction-level machine emulator used as the paper's software-ILR
// baseline (Fig. 2).
//
// The package has two consumers with one semantic core:
//
//   - Machine, a functional interpreter that runs images natively, in
//     scattered (naive-ILR) layout, under VCFR translation, or under an
//     emulation cost model. It is the golden reference the test suite uses
//     to prove that randomized binaries are semantically identical to the
//     originals.
//   - package cpu, the cycle-level pipeline, which calls Exec for
//     instruction semantics and wraps its own timing around the Outcome.
//
// Keeping one Exec means the timing model can never drift semantically from
// the reference interpreter.
package emu

import (
	"fmt"

	"vcfr/internal/isa"
)

// Memory is the byte-addressable memory interface Exec operates on.
// *program.AddressSpace implements it.
type Memory interface {
	ByteAt(addr uint32) byte
	SetByte(addr uint32, b byte)
	ReadWord(addr uint32) uint32
	WriteWord(addr uint32, v uint32)
}

// Translator converts between the randomized instruction space and the
// original instruction space. ilr.Tables implements it; defining the
// interface here keeps emu and cpu free of a dependency on the rewriter.
type Translator interface {
	// ToOrig de-randomizes: randomized instruction address -> original.
	ToOrig(rand uint32) (uint32, bool)
	// ToRand randomizes: original instruction address -> randomized.
	ToRand(orig uint32) (uint32, bool)
	// Prohibited reports whether orig carries the paper's "randomized tag":
	// the instruction was safely randomized, so transferring control to its
	// un-randomized address is an attack indicator and must fault.
	Prohibited(orig uint32) bool
}

// Hooks let an execution substrate override the architectural events that
// VCFR redefines. A nil hook means default (identity) behaviour.
type Hooks struct {
	// ReturnAddr maps a call's fall-through address to the value actually
	// pushed on the stack. VCFR pushes the randomized return address.
	ReturnAddr func(next uint32) uint32
	// LoadedWord post-processes a word loaded from memory. VCFR auto-
	// de-randomizes loads from stack slots marked in the return-address
	// bitmap (the PIC "call next; pop r" idiom, C++ unwinding).
	LoadedWord func(addr, val uint32) uint32
	// StoredWord observes every word store. VCFR clears the return-address
	// bitmap bit for overwritten slots; the call path sets it.
	StoredWord func(addr, val uint32, isCallPush bool)
}

// State is the architectural machine state shared by the interpreter and the
// pipeline: registers, flags, and memory. The program counter is owned by
// the execution substrate (Machine or the pipeline fetch unit), because its
// meaning differs between instruction spaces.
type State struct {
	R     [isa.NumRegs]uint32
	Z     bool // zero
	N     bool // negative (sign)
	C     bool // carry / unsigned borrow
	V     bool // signed overflow
	Mem   Memory
	Hooks Hooks

	// Tiny OS surface.
	Halted   bool
	ExitCode uint32
	Out      []byte // bytes written via SysPutChar / SysWriteInt
	In       []byte // input stream consumed by SysGetChar
	inPos    int
}

// NewState returns a state with the given memory and an empty input stream.
func NewState(mem Memory) *State { return &State{Mem: mem} }

// SP returns the stack pointer.
func (s *State) SP() uint32 { return s.R[isa.RegSP] }

// SetSP sets the stack pointer.
func (s *State) SetSP(v uint32) { s.R[isa.RegSP] = v }

// getChar consumes one input byte, returning 0xFFFFFFFF at EOF.
func (s *State) getChar() uint32 {
	if s.inPos >= len(s.In) {
		return 0xffff_ffff
	}
	b := s.In[s.inPos]
	s.inPos++
	return uint32(b)
}

// Fault is a runtime execution error (divide by zero, invalid fetch,
// control-flow violation). It carries the faulting address.
type Fault struct {
	Addr uint32
	Msg  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("emu: fault at %#x: %s", f.Addr, f.Msg)
}

// faultf builds a Fault.
func faultf(addr uint32, format string, args ...any) error {
	return &Fault{Addr: addr, Msg: fmt.Sprintf(format, args...)}
}

// DecodeBytes decodes the instruction encoded in buf as if it had been
// fetched from addr, reporting failure as the same fetch Fault FetchDecode
// produces. Callers that mutate fetched bytes before decode (fault
// injection) go through here so a corrupted fetch takes exactly the error
// path a genuinely corrupt image would.
func DecodeBytes(buf []byte, addr uint32) (isa.Inst, error) {
	in, err := isa.Decode(buf, addr)
	if err != nil {
		return isa.Inst{}, faultf(addr, "fetch: %v", err)
	}
	return in, nil
}

// FetchDecode reads and decodes the instruction stored at addr.
func FetchDecode(mem Memory, addr uint32) (isa.Inst, error) {
	var buf [isa.MaxLength]byte
	for i := range buf {
		buf[i] = mem.ByteAt(addr + uint32(i))
	}
	return DecodeBytes(buf[:], addr)
}
