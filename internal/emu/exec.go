package emu

import "vcfr/internal/isa"

// MemKind classifies the data-memory access an instruction performed, for
// the timing model.
type MemKind uint8

// Data-memory access kinds.
const (
	MemNone MemKind = iota
	MemLoad
	MemStore
)

// Outcome reports what an executed instruction did, for the benefit of the
// timing model and the fetch unit.
type Outcome struct {
	// Taken is true when control transferred away from the fall-through
	// path. Target is then the architectural target address — under VCFR
	// this is a randomized-space address that the fetch unit must
	// de-randomize.
	Taken  bool
	Target uint32

	// Data-memory access performed by this instruction (at most one; stack
	// pushes/pops included).
	MemKind MemKind
	MemAddr uint32

	// Call/Return classification, for the return-address stack predictor.
	IsCall bool
	IsRet  bool
}

// Exec executes one instruction against s and returns its outcome.
//
// Exec does not advance a program counter: the caller owns PC semantics.
// in.Addr must be the instruction's address in the space the caller fetches
// from (the original space under VCFR); call return addresses derive from it
// via the ReturnAddr hook.
func Exec(s *State, in isa.Inst) (Outcome, error) {
	var out Outcome
	err := ExecInto(s, &in, &out)
	return out, err
}

// Flag helpers. Package-level (capture-free) so ExecInto constructs no
// closures on its hot path; each is small enough to inline.

func setZN(s *State, v uint32) {
	s.Z = v == 0
	s.N = int32(v) < 0
}

func logicFlags(s *State, v uint32) {
	setZN(s, v)
	s.C, s.V = false, false
}

func addFlags(s *State, a, b, res uint32) {
	setZN(s, res)
	s.C = res < a
	s.V = (a^b^0x8000_0000)&(a^res)&0x8000_0000 != 0
}

func subFlags(s *State, a, b, res uint32) {
	setZN(s, res)
	s.C = a < b // unsigned borrow
	s.V = (a^b)&(a^res)&0x8000_0000 != 0
}

func loadWord(s *State, out *Outcome, addr uint32) uint32 {
	v := s.Mem.ReadWord(addr)
	if s.Hooks.LoadedWord != nil {
		v = s.Hooks.LoadedWord(addr, v)
	}
	out.MemKind, out.MemAddr = MemLoad, addr
	return v
}

func storeWord(s *State, out *Outcome, addr, v uint32, isCallPush bool) {
	s.Mem.WriteWord(addr, v)
	if s.Hooks.StoredWord != nil {
		s.Hooks.StoredWord(addr, v, isCallPush)
	}
	out.MemKind, out.MemAddr = MemStore, addr
}

func pushWord(s *State, out *Outcome, v uint32, isCallPush bool) {
	sp := s.R[isa.RegSP] - 4
	s.R[isa.RegSP] = sp
	storeWord(s, out, sp, v, isCallPush)
}

func popWord(s *State, out *Outcome) uint32 {
	sp := s.R[isa.RegSP]
	v := loadWord(s, out, sp)
	s.R[isa.RegSP] = sp + 4
	return v
}

// popRawWord bypasses the LoadedWord hook: a ret consumes the randomized
// return address as-is (the fetch unit de-randomizes it), whereas an
// explicit pop/load of a marked slot must observe the de-randomized
// value (PIC and exception-unwind compatibility, Sec. IV-C).
func popRawWord(s *State, out *Outcome) uint32 {
	sp := s.R[isa.RegSP]
	v := s.Mem.ReadWord(sp)
	out.MemKind, out.MemAddr = MemLoad, sp
	s.R[isa.RegSP] = sp + 4
	return v
}

func branchTo(out *Outcome, cond bool, target uint32) {
	if cond {
		out.Taken, out.Target = true, target
	}
}

// ExecInto is Exec without the value-copy boundaries: in and out are passed
// by pointer so the block-cache hot loop (internal/cpu) executes straight
// from its pre-decoded form. *out must be the zero Outcome on entry; it is
// filled in place. Semantics are identical to Exec by construction — Exec
// delegates here.
func ExecInto(s *State, in *isa.Inst, out *Outcome) error {
	r := &s.R

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		s.Halted = true
	case isa.OpSys:
		switch in.Imm {
		case isa.SysExit:
			s.Halted = true
			s.ExitCode = r[1]
		case isa.SysPutChar:
			s.Out = append(s.Out, byte(r[1]))
		case isa.SysGetChar:
			r[0] = s.getChar()
		case isa.SysWriteInt:
			s.Out = appendInt(s.Out, int32(r[1]))
		default:
			return faultf(in.Addr, "unknown syscall %d", in.Imm)
		}
	case isa.OpMovRR:
		r[in.Rd] = r[in.Rs]
	case isa.OpMovRI:
		r[in.Rd] = uint32(in.Imm)
	case isa.OpAdd:
		a, b := r[in.Rd], r[in.Rs]
		r[in.Rd] = a + b
		addFlags(s, a, b, r[in.Rd])
	case isa.OpSub:
		a, b := r[in.Rd], r[in.Rs]
		r[in.Rd] = a - b
		subFlags(s, a, b, r[in.Rd])
	case isa.OpAnd:
		r[in.Rd] &= r[in.Rs]
		logicFlags(s, r[in.Rd])
	case isa.OpOr:
		r[in.Rd] |= r[in.Rs]
		logicFlags(s, r[in.Rd])
	case isa.OpXor:
		r[in.Rd] ^= r[in.Rs]
		logicFlags(s, r[in.Rd])
	case isa.OpShl:
		r[in.Rd] <<= r[in.Rs] & 31
		logicFlags(s, r[in.Rd])
	case isa.OpShr:
		r[in.Rd] >>= r[in.Rs] & 31
		logicFlags(s, r[in.Rd])
	case isa.OpSar:
		r[in.Rd] = uint32(int32(r[in.Rd]) >> (r[in.Rs] & 31))
		logicFlags(s, r[in.Rd])
	case isa.OpMul:
		r[in.Rd] *= r[in.Rs]
		logicFlags(s, r[in.Rd])
	case isa.OpDiv:
		if r[in.Rs] == 0 {
			return faultf(in.Addr, "divide by zero")
		}
		r[in.Rd] = uint32(int32(r[in.Rd]) / int32(r[in.Rs]))
		logicFlags(s, r[in.Rd])
	case isa.OpMod:
		if r[in.Rs] == 0 {
			return faultf(in.Addr, "modulo by zero")
		}
		r[in.Rd] = uint32(int32(r[in.Rd]) % int32(r[in.Rs]))
		logicFlags(s, r[in.Rd])
	case isa.OpNeg:
		r[in.Rd] = -r[in.Rd]
		logicFlags(s, r[in.Rd])
	case isa.OpNot:
		r[in.Rd] = ^r[in.Rd]
		logicFlags(s, r[in.Rd])
	case isa.OpAddI:
		a, b := r[in.Rd], uint32(in.Imm)
		r[in.Rd] = a + b
		addFlags(s, a, b, r[in.Rd])
	case isa.OpSubI:
		a, b := r[in.Rd], uint32(in.Imm)
		r[in.Rd] = a - b
		subFlags(s, a, b, r[in.Rd])
	case isa.OpAndI:
		r[in.Rd] &= uint32(in.Imm)
		logicFlags(s, r[in.Rd])
	case isa.OpOrI:
		r[in.Rd] |= uint32(in.Imm)
		logicFlags(s, r[in.Rd])
	case isa.OpXorI:
		r[in.Rd] ^= uint32(in.Imm)
		logicFlags(s, r[in.Rd])
	case isa.OpShlI:
		r[in.Rd] <<= uint32(in.Imm) & 31
		logicFlags(s, r[in.Rd])
	case isa.OpShrI:
		r[in.Rd] >>= uint32(in.Imm) & 31
		logicFlags(s, r[in.Rd])
	case isa.OpSarI:
		r[in.Rd] = uint32(int32(r[in.Rd]) >> (uint32(in.Imm) & 31))
		logicFlags(s, r[in.Rd])
	case isa.OpCmp:
		a, b := r[in.Rd], r[in.Rs]
		subFlags(s, a, b, a-b)
	case isa.OpCmpI:
		a, b := r[in.Rd], uint32(in.Imm)
		subFlags(s, a, b, a-b)
	case isa.OpTest:
		logicFlags(s, r[in.Rd]&r[in.Rs])
	case isa.OpLoad:
		r[in.Rd] = loadWord(s, out, r[in.Rs]+uint32(in.Imm))
	case isa.OpStore:
		storeWord(s, out, r[in.Rd]+uint32(in.Imm), r[in.Rs], false)
	case isa.OpLoadB:
		addr := r[in.Rs] + uint32(in.Imm)
		r[in.Rd] = uint32(s.Mem.ByteAt(addr))
		out.MemKind, out.MemAddr = MemLoad, addr
	case isa.OpStoreB:
		addr := r[in.Rd] + uint32(in.Imm)
		s.Mem.SetByte(addr, byte(r[in.Rs]))
		if s.Hooks.StoredWord != nil {
			s.Hooks.StoredWord(addr, uint32(byte(r[in.Rs])), false)
		}
		out.MemKind, out.MemAddr = MemStore, addr
	case isa.OpLea:
		r[in.Rd] = r[in.Rs] + uint32(in.Imm)
	case isa.OpLoadR:
		r[in.Rd] = loadWord(s, out, r[in.Rs]+r[in.Rt])
	case isa.OpStoreR:
		storeWord(s, out, r[in.Rd]+r[in.Rt], r[in.Rs], false)
	case isa.OpPush:
		pushWord(s, out, r[in.Rd], false)
	case isa.OpPop:
		r[in.Rd] = popWord(s, out)
	case isa.OpJmp:
		out.Taken, out.Target = true, in.Target
	case isa.OpJe:
		branchTo(out, s.Z, in.Target)
	case isa.OpJne:
		branchTo(out, !s.Z, in.Target)
	case isa.OpJl:
		branchTo(out, s.N != s.V, in.Target)
	case isa.OpJge:
		branchTo(out, s.N == s.V, in.Target)
	case isa.OpJg:
		branchTo(out, !s.Z && s.N == s.V, in.Target)
	case isa.OpJle:
		branchTo(out, s.Z || s.N != s.V, in.Target)
	case isa.OpJb:
		branchTo(out, s.C, in.Target)
	case isa.OpJae:
		branchTo(out, !s.C, in.Target)
	case isa.OpCall:
		ra := in.NextAddr()
		if s.Hooks.ReturnAddr != nil {
			ra = s.Hooks.ReturnAddr(ra)
		}
		pushWord(s, out, ra, true)
		out.Taken, out.Target, out.IsCall = true, in.Target, true
	case isa.OpCallR:
		ra := in.NextAddr()
		if s.Hooks.ReturnAddr != nil {
			ra = s.Hooks.ReturnAddr(ra)
		}
		target := r[in.Rd] // read before the push: call through sp is legal
		pushWord(s, out, ra, true)
		out.Taken, out.Target, out.IsCall = true, target, true
	case isa.OpJmpR:
		out.Taken, out.Target = true, r[in.Rd]
	case isa.OpRet:
		out.Taken, out.Target, out.IsRet = true, popRawWord(s, out), true
	default:
		return faultf(in.Addr, "invalid opcode %v", in.Op)
	}
	return nil
}

// appendInt appends the decimal representation of v.
func appendInt(dst []byte, v int32) []byte {
	if v < 0 {
		dst = append(dst, '-')
		return appendUint(dst, uint32(-int64(v)))
	}
	return appendUint(dst, uint32(v))
}

func appendUint(dst []byte, v uint32) []byte {
	var buf [10]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}
