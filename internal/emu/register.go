package emu

import "vcfr/internal/stats"

// Register registers the interpreter's counters into the statistics spine
// under the emu.* names (see internal/stats). The emulator is the
// functional golden model, so its counters describe the instruction stream,
// not timing.
func (s *Stats) Register(r *stats.Registry) {
	sc := r.Scope("emu")
	sc.Counter("instructions", "Instructions interpreted.", &s.Instructions)
	sc.Counter("taken", "Executed taken control transfers.", &s.Taken)
	sc.Counter("calls", "Executed calls.", &s.Calls)
	sc.Counter("rets", "Executed returns.", &s.Rets)
	sc.Counter("indirect_cf", "Executed indirect transfers (jmpr/callr/ret).", &s.IndirectCF)
	sc.Counter("loads", "Executed loads.", &s.Loads)
	sc.Counter("stores", "Executed stores.", &s.Stores)
	sc.Counter("syscalls", "Executed syscalls.", &s.Syscalls)
	sc.Counter("host_cycles", "Accumulated cost-model cycles (software ILR emulation).", &s.HostCycles)
	sc.Counter("unrandomized", "Instructions executed at un-randomized addresses (VCFR failover).", &s.Unrandomized)
}
