package emu

import (
	"errors"
	"strings"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/isa"
)

func TestFaultErrorMessage(t *testing.T) {
	err := faultf(0xdead, "bad %s", "thing")
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatal("not a Fault")
	}
	if f.Addr != 0xdead {
		t.Errorf("addr = %#x", f.Addr)
	}
	if !strings.Contains(err.Error(), "0xdead") || !strings.Contains(err.Error(), "bad thing") {
		t.Errorf("message = %q", err)
	}
}

func TestMachineStepAfterHalt(t *testing.T) {
	img := asm.MustAssemble("h", ".entry main\nmain: halt")
	m, err := NewMachine(img, Config{Mode: ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	if running, err := m.Step(); err != nil || running {
		t.Fatalf("first step: running=%v err=%v", running, err)
	}
	// Stepping a halted machine is a no-op, not an error.
	if running, err := m.Step(); err != nil || running {
		t.Errorf("step after halt: running=%v err=%v", running, err)
	}
	res, err := m.RunN(100)
	if err != nil || res.Stats.Instructions != 1 {
		t.Errorf("RunN after halt: %+v, %v", res.Stats, err)
	}
}

func TestMachineDivFaultSurfacesAddress(t *testing.T) {
	img := asm.MustAssemble("d", `
.entry main
main:
	movi r1, 5
	movi r2, 0
	div r1, r2
	halt
`)
	_, err := Run(img, Config{Mode: ModeNative})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v", err)
	}
	divAddr := img.Entry + 12 // two movi (6 B each) precede the div
	if f.Addr != divAddr {
		t.Errorf("fault addr = %#x, want %#x", f.Addr, divAddr)
	}
}

func TestMachineAccessorSurface(t *testing.T) {
	img := asm.MustAssemble("a", ".entry main\nmain:\n\tmovi r3, 9\n\thalt")
	m, err := NewMachine(img, Config{Mode: ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	if m.PC() != img.Entry {
		t.Errorf("PC = %#x", m.PC())
	}
	if m.Mem() == nil || m.State() == nil {
		t.Fatal("nil accessors")
	}
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.State().R[3] != 9 {
		t.Error("state not shared with accessor")
	}
	if m.PC() != img.Entry+6 {
		t.Errorf("PC after movi = %#x", m.PC())
	}
}

func TestExecCallThroughSPPushesFirst(t *testing.T) {
	// callr through a register equal to sp must read the target before the
	// push modifies sp (the comment in exec.go's callr case).
	s := newTestState()
	target := s.SP() // jump "to" the current sp value
	s.R[isa.RegSP] = target
	out, err := Exec(s, isa.Inst{Op: isa.OpCallR, Rd: isa.RegSP, Addr: 0x400})
	if err != nil {
		t.Fatal(err)
	}
	if out.Target != target {
		t.Errorf("callr sp target = %#x, want pre-push %#x", out.Target, target)
	}
}

func TestCostModelComponents(t *testing.T) {
	c := DefaultCostModel()
	plain := c.Cycles(isa.Inst{Op: isa.OpNop}, Outcome{})
	mem := c.Cycles(isa.Inst{Op: isa.OpLoad}, Outcome{MemKind: MemLoad})
	ctl := c.Cycles(isa.Inst{Op: isa.OpJmp}, Outcome{Taken: true})
	ind := c.Cycles(isa.Inst{Op: isa.OpRet}, Outcome{Taken: true, IsRet: true})
	sys := c.Cycles(isa.Inst{Op: isa.OpSys}, Outcome{})
	if !(plain < mem && plain < ctl && ctl < ind && plain < sys) {
		t.Errorf("cost ordering wrong: plain=%d mem=%d ctl=%d ind=%d sys=%d",
			plain, mem, ctl, ind, sys)
	}
	// Longer encodings cost more to decode.
	short := c.Cycles(isa.Inst{Op: isa.OpRet}, Outcome{})
	long := c.Cycles(isa.Inst{Op: isa.OpMovRI}, Outcome{})
	if long <= short {
		t.Errorf("decode scaling missing: %d <= %d", long, short)
	}
}

func TestMachineVCFRRedirectBackToRandomizedSpace(t *testing.T) {
	// After a failover to an un-randomized address, the next direct
	// transfer (whose immediate was rewritten) must bring execution back to
	// randomized space.
	img, tr, randRA := buildVCFRCase(t)
	fn, _ := img.Lookup("fn")
	tr.prohibit[fn] = false // allow fn's original address as failover
	m, err := NewMachine(img, Config{Mode: ModeVCFR, Trans: tr, RandRA: randRA})
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.redirect(fn)
	if err != nil || next != fn {
		t.Fatalf("failover: %v %#x", err, next)
	}
	if m.inRand {
		t.Fatal("still in randomized space")
	}
	// A randomized target re-enters randomized space.
	randMain, _ := tr.ToRand(img.Entry)
	next, err = m.redirect(randMain)
	if err != nil || next != img.Entry {
		t.Fatalf("re-entry: %v %#x", err, next)
	}
	if !m.inRand {
		t.Error("did not return to randomized space")
	}
}

func BenchmarkMachineStepNative(b *testing.B) {
	img := asm.MustAssemble("bench", fibSource)
	m, err := NewMachine(img, Config{Mode: ModeNative})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		running, err := m.Step()
		if err != nil {
			b.Fatal(err)
		}
		if !running {
			m, _ = NewMachine(img, Config{Mode: ModeNative})
		}
	}
}
