package emu

import "vcfr/internal/isa"

// CostModel charges host cycles per interpreted guest instruction for
// ModeEmulatedILR. It models the work a software complete-ILR virtual
// machine (Hiser et al.'s Strata-based VM, or the "instruction level machine
// emulator" of the paper's Fig. 2) performs for every guest instruction:
//
//   - Dispatch: indirect-threaded dispatch through the interpreter loop —
//     load opcode, table jump, mispredicted indirect branch on the host.
//   - Decode: operand extraction, scaled by encoded length.
//   - Mediation: the ILR rewrite-rule lookup. Complete ILR must consult the
//     fallthrough map after *every* instruction (each instruction's successor
//     is randomized), and control transfers pay an additional lookup to map
//     the taken target.
//   - Memory: guest loads/stores go through the VM's address translation and
//     bounds checks.
//   - Syscall: trap out of the VM, marshal, re-enter.
//
// The defaults are calibrated so that whole-program slowdowns versus native
// execution land in the paper's Fig. 2 band (hundreds of times, varying by
// instruction mix), not to match any absolute host.
type CostModel struct {
	Dispatch     uint64 // per instruction
	DecodePerB   uint64 // per encoded byte
	FallthruMap  uint64 // per instruction: successor lookup in rewrite rules
	ControlXfer  uint64 // additional, per taken transfer
	IndirectXfer uint64 // additional, per indirect transfer (hash-table probe)
	MemAccess    uint64 // additional, per guest load/store
	Syscall      uint64 // additional, per guest syscall
}

// DefaultCostModel returns the calibrated Fig. 2 cost model.
func DefaultCostModel() *CostModel {
	return &CostModel{
		Dispatch:     55,
		DecodePerB:   9,
		FallthruMap:  70,
		ControlXfer:  90,
		IndirectXfer: 160,
		MemAccess:    65,
		Syscall:      600,
	}
}

// Cycles returns the host-cycle charge for one executed instruction.
func (c *CostModel) Cycles(in isa.Inst, out Outcome) uint64 {
	n := c.Dispatch + c.DecodePerB*uint64(in.Len()) + c.FallthruMap
	if out.Taken {
		n += c.ControlXfer
		if in.Class().IsIndirect() {
			n += c.IndirectXfer
		}
	}
	if out.MemKind != MemNone {
		n += c.MemAccess
	}
	if in.Op == isa.OpSys {
		n += c.Syscall
	}
	return n
}
