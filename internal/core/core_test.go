package core

import (
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/cpu"
)

const demoSrc = `
.entry main
main:
	movi r1, 9
	call square
	mov r1, r0
	sys 3
	movi r1, 0
	sys 0
.func square
square:
	mov r0, r1
	mul r0, r1
	ret
`

func newSys(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystemFromSource("demo", demoSrc, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemRunModes(t *testing.T) {
	sys := newSys(t)
	for _, mode := range []ExecMode{ExecNative, ExecVCFR, ExecEmulated} {
		out, err := sys.Run(mode)
		if err != nil {
			t.Fatalf("Run(%d): %v", mode, err)
		}
		if string(out.Out) != "81" {
			t.Errorf("Run(%d) = %q, want 81", mode, out.Out)
		}
	}
	if _, err := sys.Run(ExecMode(42)); err == nil {
		t.Error("unknown exec mode accepted")
	}
}

func TestSystemSimulate(t *testing.T) {
	sys := newSys(t)
	for _, mode := range []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR} {
		res, err := sys.Simulate(mode, nil, 0)
		if err != nil {
			t.Fatalf("Simulate(%v): %v", mode, err)
		}
		if string(res.Out) != "81" {
			t.Errorf("Simulate(%v) = %q", mode, res.Out)
		}
		if res.Stats.Cycles == 0 {
			t.Errorf("Simulate(%v): no cycles", mode)
		}
	}
	res, err := sys.Simulate(cpu.ModeVCFR, func(c *cpu.Config) { c.DRCEntries = 64 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRC.Lookups == 0 {
		t.Error("DRC unused under VCFR simulation")
	}
	if _, err := sys.Simulate(cpu.Mode(9), nil, 0); err == nil {
		t.Error("unknown cpu mode accepted")
	}
}

func TestSystemImagesDistinct(t *testing.T) {
	sys := newSys(t)
	if sys.Original() == sys.Randomized() {
		t.Error("original and randomized images are the same object")
	}
	if sys.Scattered().Entry == sys.Original().Entry {
		t.Error("scattered entry not randomized")
	}
	if sys.Stats().Instructions == 0 || sys.Stats().TableBytes == 0 {
		t.Errorf("stats empty: %+v", sys.Stats())
	}
	if sys.Rewrite() == nil {
		t.Error("Rewrite() nil")
	}
}

func TestSystemGadgetReport(t *testing.T) {
	sys := newSys(t)
	rep := sys.GadgetReport()
	if rep.Total == 0 {
		t.Fatal("no gadgets found in original image")
	}
	if rep.RemovalRate < 0.9 {
		t.Errorf("removal rate %.2f, want >= 0.9", rep.RemovalRate)
	}
	for tmpl, ok := range rep.PayloadsAfter {
		if ok {
			t.Errorf("payload %q still assembles after randomization", tmpl)
		}
	}
}

func TestSystemRerandomize(t *testing.T) {
	sys := newSys(t)
	re, err := sys.Rerandomize(99)
	if err != nil {
		t.Fatal(err)
	}
	// New layout, same behaviour.
	a, _ := sys.Rewrite().Tables.ToRand(sys.Original().Entry)
	b, _ := re.Rewrite().Tables.ToRand(re.Original().Entry)
	if a == b {
		t.Error("re-randomization kept the entry placement")
	}
	out, err := re.Run(ExecVCFR)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Out) != "81" {
		t.Errorf("re-randomized run = %q", out.Out)
	}
}

func TestSystemDefaults(t *testing.T) {
	img := asm.MustAssemble("d", demoSrc)
	sys, err := NewSystem(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Run(ExecVCFR)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Out) != "81" {
		t.Errorf("zero-options run = %q", out.Out)
	}
	// Software ret-rand option plumbs through.
	soft, err := NewSystem(img, Options{SoftwareRetRand: true})
	if err != nil {
		t.Fatal(err)
	}
	if soft.Rewrite().Opts.RetRand.String() != "software" {
		t.Errorf("ret-rand mode = %v", soft.Rewrite().Opts.RetRand)
	}
}

func TestNewSystemFromSourceErrors(t *testing.T) {
	if _, err := NewSystemFromSource("bad", "definitely not asm", Options{}); err == nil {
		t.Error("bad source accepted")
	}
}
