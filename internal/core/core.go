// Package core is the top-level API of the VCFR library: one type, System,
// that bundles a program with its randomization artifacts and exposes the
// paper's three execution substrates (reference interpreter, software-ILR
// emulator, cycle-level pipeline) plus the security analyses.
//
// Typical use:
//
//	img, _ := asm.Assemble("app", source)           // or any program.Image
//	sys, _ := core.NewSystem(img, core.Options{Seed: 1})
//	out, _ := sys.Run(core.ExecVCFR)                // functional execution
//	res, _ := sys.Simulate(cpu.ModeVCFR, nil, 0)    // cycle-level simulation
//	rep := sys.GadgetReport()                       // attack-surface report
//
// Everything in the package is a thin, stable veneer over the focused
// subsystem packages (ilr, emu, cpu, gadget); programs that need more
// control use those directly.
package core

import (
	"fmt"

	"vcfr/internal/asm"
	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/gadget"
	"vcfr/internal/ilr"
	"vcfr/internal/program"
)

// Options configures randomization. The zero value means: a seed of 1,
// spread 8, architectural return-address randomization — the defaults the
// evaluation uses.
type Options struct {
	// Seed drives every placement decision; equal seeds reproduce layouts.
	Seed int64
	// Spread multiplies the randomized address range beyond the instruction
	// count (entropy / scatter density). Default 8.
	Spread int
	// PageConfined keeps randomized addresses within their original 4 KiB
	// page (Sec. IV-D).
	PageConfined bool
	// SoftwareRetRand uses the software (rewrite-based) return-address
	// option instead of the architectural one.
	SoftwareRetRand bool
}

func (o Options) toILR() ilr.Options {
	opts := ilr.Options{
		Seed:         o.Seed,
		Spread:       o.Spread,
		PageConfined: o.PageConfined,
		RetRand:      ilr.RetRandArch,
	}
	if o.Seed == 0 {
		opts.Seed = 1
	}
	if o.Spread == 0 {
		opts.Spread = 8
	}
	if o.SoftwareRetRand {
		opts.RetRand = ilr.RetRandSoftware
	}
	return opts
}

// ExecMode selects a functional execution substrate for Run.
type ExecMode int

// Functional execution modes.
const (
	// ExecNative runs the original binary.
	ExecNative ExecMode = iota + 1
	// ExecVCFR runs the randomized binary the way the proposed hardware
	// does: original layout, randomized control flow, prohibition checks.
	ExecVCFR
	// ExecEmulated runs the scattered binary under the software-ILR
	// emulation cost model (Fig. 2's baseline).
	ExecEmulated
)

// System is a program plus its randomization artifacts.
type System struct {
	rewrite *ilr.Result
	opts    Options
}

// NewSystem randomizes img. The input image is not modified.
func NewSystem(img *program.Image, opts Options) (*System, error) {
	res, err := ilr.Rewrite(img, opts.toILR())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{rewrite: res, opts: opts}, nil
}

// FromRewrite wraps an existing randomization result (e.g. one reloaded from
// an ilr bundle) as a System.
func FromRewrite(res *ilr.Result) *System {
	return &System{rewrite: res, opts: Options{
		Seed:            res.Opts.Seed,
		Spread:          res.Opts.Spread,
		PageConfined:    res.Opts.PageConfined,
		SoftwareRetRand: res.Opts.RetRand == ilr.RetRandSoftware,
	}}
}

// NewSystemFromSource assembles VX source and randomizes the result.
func NewSystemFromSource(name, source string, opts Options) (*System, error) {
	img, err := asm.Assemble(name, source)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return NewSystem(img, opts)
}

// Original returns the un-randomized image.
func (s *System) Original() *program.Image { return s.rewrite.Orig }

// Randomized returns the VCFR image: original layout, randomized control
// flow.
func (s *System) Randomized() *program.Image { return s.rewrite.VCFR }

// Scattered returns the physically scattered image (what a software ILR VM
// interprets and a naive hardware ILR fetches from).
func (s *System) Scattered() *program.Image { return s.rewrite.Scattered }

// Rewrite exposes the full randomization result for advanced use.
func (s *System) Rewrite() *ilr.Result { return s.rewrite }

// Stats returns the rewrite statistics (instructions randomized, relocations
// patched, entropy, table size).
func (s *System) Stats() ilr.Stats { return s.rewrite.Stats }

// Run executes the program functionally in the given mode with input served
// to SysGetChar.
func (s *System) Run(mode ExecMode, input ...byte) (emu.RunResult, error) {
	cfg := emu.Config{Input: input}
	var img *program.Image
	switch mode {
	case ExecNative:
		cfg.Mode = emu.ModeNative
		img = s.rewrite.Orig
	case ExecVCFR:
		cfg.Mode = emu.ModeVCFR
		cfg.Trans = s.rewrite.Tables
		cfg.RandRA = s.rewrite.RandRA
		img = s.rewrite.VCFR
	case ExecEmulated:
		cfg.Mode = emu.ModeEmulatedILR
		cfg.Trans = s.rewrite.Tables
		img = s.rewrite.Scattered
	default:
		return emu.RunResult{}, fmt.Errorf("core: unknown exec mode %d", mode)
	}
	return emu.Run(img, cfg)
}

// Pipeline constructs (without running) a cycle-level pipeline for the
// given architecture mode — the entry point for callers that need stepping,
// tracing, or input injection. mutate, if non-nil, adjusts the default
// machine configuration.
func (s *System) Pipeline(mode cpu.Mode, mutate func(*cpu.Config)) (*cpu.Pipeline, error) {
	cfg := cpu.DefaultConfig(mode)
	if mutate != nil {
		mutate(&cfg)
	}
	var img *program.Image
	var trans emu.Translator
	var randRA map[uint32]uint32
	switch mode {
	case cpu.ModeBaseline:
		img = s.rewrite.Orig
	case cpu.ModeNaiveILR:
		img, trans = s.rewrite.Scattered, s.rewrite.Tables
	case cpu.ModeVCFR:
		img, trans, randRA = s.rewrite.VCFR, s.rewrite.Tables, s.rewrite.RandRA
	default:
		return nil, fmt.Errorf("core: unknown cpu mode %v", mode)
	}
	return cpu.New(img, cfg, trans, randRA)
}

// Simulate runs the cycle-level pipeline in the given architecture mode.
// mutate, if non-nil, adjusts the default machine configuration (DRC size,
// ablation switches); maxInsts of 0 runs to completion.
func (s *System) Simulate(mode cpu.Mode, mutate func(*cpu.Config), maxInsts uint64) (cpu.Result, error) {
	p, err := s.Pipeline(mode, mutate)
	if err != nil {
		return cpu.Result{}, err
	}
	return p.Run(maxInsts)
}

// GadgetReport summarizes the attack surface before and after randomization.
type GadgetReport struct {
	Total       int     // gadgets in the original binary
	Surviving   int     // gadgets still reachable after randomization
	RemovalRate float64 // fraction removed (the paper's Fig. 11 metric)
	// PayloadsBefore and PayloadsAfter report which ROP payload templates
	// could be assembled from each pool.
	PayloadsBefore map[string]bool
	PayloadsAfter  map[string]bool
}

// GadgetReport runs the Sec. V security analysis.
func (s *System) GadgetReport() GadgetReport {
	pool := gadget.Scan(s.rewrite.Orig, gadget.DefaultMaxInsts)
	surv := gadget.Survivors(pool, s.rewrite.Tables)
	return GadgetReport{
		Total:          len(pool),
		Surviving:      len(surv),
		RemovalRate:    gadget.RemovalRate(pool, surv),
		PayloadsBefore: gadget.TryAllTemplates(pool),
		PayloadsAfter:  gadget.TryAllTemplates(surv),
	}
}

// Rerandomize produces a fresh System over the same original image with a
// new seed — the paper's periodic re-randomization defense.
func (s *System) Rerandomize(seed int64) (*System, error) {
	opts := s.opts
	opts.Seed = seed
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return NewSystem(s.rewrite.Orig, opts)
}
