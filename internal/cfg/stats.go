package cfg

import "vcfr/internal/isa"

// Stats are the static control-flow counts reported in the paper's Table II
// (direct vs indirect transfers, calls vs indirect calls) and Fig. 9
// (functions with and without ret instructions).
type Stats struct {
	Instructions      int
	BasicBlocks       int
	DirectTransfers   int // jmp + conditional branches + direct calls
	IndirectTransfers int // jmpr + callr
	Calls             int // direct calls
	IndirectCalls     int // callr
	Rets              int
	ResolvedIndirect  int // indirect transfers with analysis-pinned targets
	Functions         int
	FuncsWithRet      int
	FuncsWithoutRet   int
}

// Stats computes the static analysis summary for the graph's image.
func (g *Graph) Stats() Stats {
	s := Stats{
		Instructions: len(g.Insts),
		BasicBlocks:  len(g.Blocks),
	}
	for _, in := range g.Insts {
		switch in.Class() {
		case isa.ClassJump, isa.ClassBranch:
			s.DirectTransfers++
		case isa.ClassCall:
			s.DirectTransfers++
			s.Calls++
		case isa.ClassJumpR:
			s.IndirectTransfers++
		case isa.ClassCallR:
			s.IndirectTransfers++
			s.IndirectCalls++
		case isa.ClassRet:
			s.Rets++
		}
		if _, ok := g.IndirectTargets[in.Addr]; ok && in.Class().IsIndirect() {
			s.ResolvedIndirect++
		}
	}
	for _, f := range g.Functions() {
		s.Functions++
		if f.HasRet {
			s.FuncsWithRet++
		} else {
			s.FuncsWithoutRet++
		}
	}
	return s
}
