// Package cfg builds control-flow graphs and the static analyses the ILR
// rewriter depends on: leader-algorithm basic blocks, direct and
// conservative indirect edges, block-local constant propagation for
// indirect-target resolution, the byte-scan code-pointer heuristic, and the
// call/return analyses behind the paper's Table II and Fig. 9.
package cfg

import (
	"fmt"
	"sort"

	"vcfr/internal/asm"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// EdgeKind classifies a CFG edge.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeFall     EdgeKind = iota + 1 // sequential fall-through
	EdgeJump                         // unconditional direct jump
	EdgeTaken                        // conditional branch, taken side
	EdgeCall                         // direct call to callee entry
	EdgeCallFall                     // call's return-to-next pseudo edge
	EdgeIndirect                     // indirect transfer to a candidate target
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeFall:
		return "fall"
	case EdgeJump:
		return "jump"
	case EdgeTaken:
		return "taken"
	case EdgeCall:
		return "call"
	case EdgeCallFall:
		return "call-fall"
	case EdgeIndirect:
		return "indirect"
	default:
		return fmt.Sprintf("edge(%d)", uint8(k))
	}
}

// Edge is one outgoing CFG edge.
type Edge struct {
	To   uint32
	Kind EdgeKind
}

// Block is a basic block: a maximal single-entry straight-line instruction
// sequence.
type Block struct {
	Start uint32
	Insts []isa.Inst
	Succs []Edge
	Preds []uint32 // start addresses of predecessor blocks
}

// End returns the first address past the block.
func (b *Block) End() uint32 {
	last := b.Insts[len(b.Insts)-1]
	return last.NextAddr()
}

// Last returns the block's final instruction.
func (b *Block) Last() isa.Inst { return b.Insts[len(b.Insts)-1] }

// Graph is the control-flow graph of one image.
type Graph struct {
	Img    *program.Image
	Insts  []isa.Inst          // every instruction, address order
	InstAt map[uint32]isa.Inst // address -> instruction
	Blocks map[uint32]*Block   // start address -> block
	Order  []uint32            // block start addresses, ascending

	// IndirectTargets maps each indirect-transfer instruction address to its
	// resolved target set (from constant propagation and jump-table
	// relocations). Instructions absent from the map are unresolved: they
	// may reach any Candidate.
	IndirectTargets map[uint32][]uint32

	// Candidates is the conservative indirect-target set: every address
	// referenced by a relocation plus every byte-scan hit (Sec. IV-A's
	// "assume that all the instructions at relocatable addresses can be the
	// targets", then pruned).
	Candidates map[uint32]bool

	// ScanOnlyCandidates are byte-scan hits NOT covered by any relocation:
	// possible computed code addresses the rewriter cannot retarget. They
	// must remain reachable at their original addresses (the failover path)
	// and therefore stay un-prohibited.
	ScanOnlyCandidates map[uint32]bool
}

// Build disassembles img and constructs its CFG.
func Build(img *program.Image) (*Graph, error) {
	insts, err := asm.Disassemble(img)
	if err != nil {
		return nil, fmt.Errorf("cfg: %w", err)
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("cfg: image %q has no instructions", img.Name)
	}
	g := &Graph{
		Img:    img,
		Insts:  insts,
		InstAt: asm.InstMap(insts),
		Blocks: make(map[uint32]*Block),
	}
	g.findCandidates()

	// Leader algorithm: block starts are the entry, every direct-transfer
	// target, every instruction following a control transfer, every function
	// symbol, and every indirect-target candidate.
	leaders := map[uint32]bool{img.Entry: true}
	for _, in := range insts {
		if in.Op.HasTarget() {
			leaders[in.Target] = true
		}
		if in.Class().IsControl() {
			leaders[in.NextAddr()] = true
		}
	}
	for _, s := range img.Symbols {
		if s.Func {
			leaders[s.Addr] = true
		}
	}
	for a := range g.Candidates {
		leaders[a] = true
	}

	// Slice the instruction list into blocks.
	var cur *Block
	for _, in := range insts {
		if cur == nil || leaders[in.Addr] {
			cur = &Block{Start: in.Addr}
			g.Blocks[in.Addr] = cur
			g.Order = append(g.Order, in.Addr)
		}
		cur.Insts = append(cur.Insts, in)
		if in.Class().IsControl() {
			cur = nil
		}
	}
	sort.Slice(g.Order, func(i, j int) bool { return g.Order[i] < g.Order[j] })

	g.resolveIndirect()
	g.addEdges()
	return g, nil
}

// findCandidates gathers the conservative indirect-target set: values of all
// relocated code-address fields, plus a byte-by-byte scan of data for
// pointer-sized constants that decode as instruction starts (the Hiser et
// al. heuristic the paper adopts).
func (g *Graph) findCandidates() {
	g.Candidates = make(map[uint32]bool)
	g.ScanOnlyCandidates = make(map[uint32]bool)

	relocTargets := make(map[uint32]bool)
	for _, r := range g.Img.Relocs {
		v, err := g.Img.ReadWord(r.Addr)
		if err != nil {
			continue
		}
		if _, ok := g.InstAt[v]; !ok {
			continue
		}
		relocTargets[v] = true
		// Direct-transfer targets are not *indirect* candidates unless some
		// data word or code constant also names them; a reloc on a jmp/call
		// target field only proves a direct edge.
		if seg := g.Img.SegAt(r.Addr); seg != nil && seg.Perm&program.PermX != 0 {
			if in, ok := g.instContaining(r.Addr); ok && in.Op.HasTarget() &&
				in.Addr+isa.TargetFieldOffset == r.Addr {
				continue
			}
		}
		g.Candidates[v] = true
	}

	// Byte scan of non-executable data.
	for i := range g.Img.Segments {
		seg := &g.Img.Segments[i]
		if seg.Perm&program.PermX != 0 {
			continue
		}
		for off := 0; off+4 <= len(seg.Data); off++ {
			v := uint32(seg.Data[off]) | uint32(seg.Data[off+1])<<8 |
				uint32(seg.Data[off+2])<<16 | uint32(seg.Data[off+3])<<24
			if _, ok := g.InstAt[v]; !ok {
				continue
			}
			g.Candidates[v] = true
			if !relocTargets[v] {
				g.ScanOnlyCandidates[v] = true
			}
		}
	}

	// Scan movi immediates in code: a code-address constant without a
	// relocation is a computed-target candidate the rewriter cannot patch.
	for _, in := range g.Insts {
		if in.Op != isa.OpMovRI {
			continue
		}
		v := uint32(in.Imm)
		if _, ok := g.InstAt[v]; !ok {
			continue
		}
		g.Candidates[v] = true
		if !relocTargets[v] {
			g.ScanOnlyCandidates[v] = true
		}
	}
}

// instContaining finds the instruction whose encoding covers addr.
func (g *Graph) instContaining(addr uint32) (isa.Inst, bool) {
	// Instruction encodings are at most MaxLength bytes, so walk back a few
	// addresses and check coverage.
	for back := uint32(0); back < isa.MaxLength; back++ {
		if in, ok := g.InstAt[addr-back]; ok {
			if addr < in.Addr+uint32(in.Len()) {
				return in, true
			}
			return isa.Inst{}, false
		}
	}
	return isa.Inst{}, false
}

// addEdges wires successor/predecessor edges for every block.
func (g *Graph) addEdges() {
	addEdge := func(b *Block, to uint32, kind EdgeKind) {
		if _, ok := g.Blocks[to]; !ok {
			return // target outside known code (fault at run time)
		}
		b.Succs = append(b.Succs, Edge{To: to, Kind: kind})
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, b.Start)
	}
	var candList []uint32
	for a := range g.Candidates {
		candList = append(candList, a)
	}
	sort.Slice(candList, func(i, j int) bool { return candList[i] < candList[j] })

	for _, start := range g.Order {
		b := g.Blocks[start]
		last := b.Last()
		switch last.Class() {
		case isa.ClassSeq:
			addEdge(b, last.NextAddr(), EdgeFall)
		case isa.ClassJump:
			addEdge(b, last.Target, EdgeJump)
		case isa.ClassBranch:
			addEdge(b, last.Target, EdgeTaken)
			addEdge(b, last.NextAddr(), EdgeFall)
		case isa.ClassCall:
			addEdge(b, last.Target, EdgeCall)
			addEdge(b, last.NextAddr(), EdgeCallFall)
		case isa.ClassCallR:
			for _, to := range g.indirectSuccs(last, candList) {
				addEdge(b, to, EdgeIndirect)
			}
			addEdge(b, last.NextAddr(), EdgeCallFall)
		case isa.ClassJumpR:
			for _, to := range g.indirectSuccs(last, candList) {
				addEdge(b, to, EdgeIndirect)
			}
		case isa.ClassRet, isa.ClassHalt:
			// Return edges are implicit (matched to call sites); halt has
			// no successor.
		}
	}
}

// indirectSuccs returns the successor set for an indirect transfer: the
// resolved targets when the analysis pinned them down, otherwise every
// candidate.
func (g *Graph) indirectSuccs(in isa.Inst, candList []uint32) []uint32 {
	if ts, ok := g.IndirectTargets[in.Addr]; ok {
		return ts
	}
	return candList
}
