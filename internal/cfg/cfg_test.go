package cfg

import (
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	img := asm.MustAssemble("t", src)
	g, err := Build(img)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

const diamondSrc = `
.entry main
main:
	movi r1, 5
	cmpi r1, 3
	jg big
small:
	movi r2, 1
	jmp join
big:
	movi r2, 2
join:
	mov r1, r2
	halt
`

func TestBuildDiamond(t *testing.T) {
	g := build(t, diamondSrc)
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4 (entry, small, big, join)", len(g.Blocks))
	}
	entry := g.Blocks[g.Img.Entry]
	if entry == nil {
		t.Fatal("no entry block")
	}
	if got := len(entry.Succs); got != 2 {
		t.Fatalf("entry succs = %d, want 2", got)
	}
	var taken, fall int
	for _, e := range entry.Succs {
		switch e.Kind {
		case EdgeTaken:
			taken++
		case EdgeFall:
			fall++
		}
	}
	if taken != 1 || fall != 1 {
		t.Errorf("edge kinds: taken=%d fall=%d", taken, fall)
	}
	join, _ := g.Img.Lookup("join")
	jb := g.Blocks[join]
	if jb == nil {
		t.Fatal("no join block")
	}
	if len(jb.Preds) != 2 {
		t.Errorf("join preds = %d, want 2", len(jb.Preds))
	}
}

func TestBuildCallEdges(t *testing.T) {
	g := build(t, `
.entry main
main:
	call fn
	halt
.func fn
fn:
	ret
`)
	entry := g.Blocks[g.Img.Entry]
	var call, callFall int
	for _, e := range entry.Succs {
		switch e.Kind {
		case EdgeCall:
			call++
		case EdgeCallFall:
			callFall++
		}
	}
	if call != 1 || callFall != 1 {
		t.Errorf("call=%d callFall=%d, want 1/1", call, callFall)
	}
	fn, _ := g.Img.Lookup("fn")
	fb := g.Blocks[fn]
	if fb == nil || fb.Last().Op != isa.OpRet {
		t.Fatal("fn block missing or malformed")
	}
	if len(fb.Succs) != 0 {
		t.Errorf("ret block has %d static succs, want 0", len(fb.Succs))
	}
}

func TestConstPropResolvesMoviCallr(t *testing.T) {
	g := build(t, `
.entry main
main:
	movi r5, fn
	callr r5
	halt
.func fn
fn:
	ret
`)
	fn, _ := g.Img.Lookup("fn")
	var callrAddr uint32
	for _, in := range g.Insts {
		if in.Op == isa.OpCallR {
			callrAddr = in.Addr
		}
	}
	ts, ok := g.IndirectTargets[callrAddr]
	if !ok {
		t.Fatal("callr not resolved by constant propagation")
	}
	if len(ts) != 1 || ts[0] != fn {
		t.Errorf("resolved targets = %#v, want [%#x]", ts, fn)
	}
	if !g.Candidates[fn] {
		t.Error("fn not in candidate set (movi code constant)")
	}
}

func TestConstPropKilledByRedefinition(t *testing.T) {
	g := build(t, `
.entry main
main:
	movi r5, fn
	addi r5, 0      ; kills the constant
	callr r5
	halt
.func fn
fn:
	ret
`)
	for _, in := range g.Insts {
		if in.Op == isa.OpCallR {
			if _, ok := g.IndirectTargets[in.Addr]; ok {
				t.Error("callr resolved despite clobbered register")
			}
		}
	}
}

func TestJumpTableResolution(t *testing.T) {
	g := build(t, `
.entry main
main:
	movi r2, 1
	shli r2, 2
	movi r3, table
	loadr r4, [r3+r2]
	jmpr r4
case0: halt
case1: halt
case2: halt
.data
table: .addr case0, case1, case2
after: .word 1234
`)
	var jmprAddr uint32
	for _, in := range g.Insts {
		if in.Op == isa.OpJmpR {
			jmprAddr = in.Addr
		}
	}
	ts, ok := g.IndirectTargets[jmprAddr]
	if !ok {
		t.Fatal("jump table not resolved")
	}
	if len(ts) != 3 {
		t.Fatalf("resolved %d targets, want 3: %#v", len(ts), ts)
	}
	for _, name := range []string{"case0", "case1", "case2"} {
		a, _ := g.Img.Lookup(name)
		found := false
		for _, v := range ts {
			if v == a {
				found = true
			}
		}
		if !found {
			t.Errorf("%s (%#x) missing from targets %#v", name, a, ts)
		}
		if !g.Candidates[a] {
			t.Errorf("%s not a candidate", name)
		}
	}
}

func TestUnresolvedIndirectUsesCandidates(t *testing.T) {
	g := build(t, `
.entry main
main:
	sys 2           ; r0 = attacker-influenced
	mov r5, r0
	jmpr r5         ; unresolvable
t0:	halt
.data
ptr: .addr t0
`)
	var jb *Block
	for _, b := range g.Blocks {
		if b.Last().Op == isa.OpJmpR {
			jb = b
		}
	}
	if jb == nil {
		t.Fatal("no jmpr block")
	}
	t0, _ := g.Img.Lookup("t0")
	found := false
	for _, e := range jb.Succs {
		if e.To == t0 && e.Kind == EdgeIndirect {
			found = true
		}
	}
	if !found {
		t.Error("unresolved jmpr lacks conservative edge to candidate t0")
	}
}

func TestScanOnlyCandidates(t *testing.T) {
	// A code address materialized via arithmetic-friendly .word (not .addr)
	// still shows up via the byte scan, and is scan-only (unpatchable).
	img := asm.MustAssemble("t", `
.entry main
main:
	nop
target:
	halt
.data
d: .word 0
`)
	taddr, _ := img.Lookup("target")
	// Plant the raw code address into data without a relocation record.
	if err := img.WriteWord(0x00100000, taddr); err != nil {
		t.Fatal(err)
	}
	g, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Candidates[taddr] {
		t.Error("byte-scan missed planted code pointer")
	}
	if !g.ScanOnlyCandidates[taddr] {
		t.Error("planted pointer not classified scan-only")
	}
}

func TestStatsTableII(t *testing.T) {
	g := build(t, `
.entry main
.func main
main:
	movi r1, 3
	cmpi r1, 0
	je done
	call fn
	movi r5, fn
	callr r5
	jmp main
done:
	halt
.func fn
fn:
	movi r6, helper
	jmpr r6
.func helper
helper:
	ret
.func noret
noret:
	nop
	jmp main
`)
	s := g.Stats()
	if s.DirectTransfers != 4 { // je, call, jmp main, jmp main(in noret)
		t.Errorf("DirectTransfers = %d, want 4", s.DirectTransfers)
	}
	if s.IndirectTransfers != 2 { // callr, jmpr
		t.Errorf("IndirectTransfers = %d, want 2", s.IndirectTransfers)
	}
	if s.Calls != 1 || s.IndirectCalls != 1 {
		t.Errorf("Calls=%d IndirectCalls=%d, want 1/1", s.Calls, s.IndirectCalls)
	}
	if s.Rets != 1 {
		t.Errorf("Rets = %d, want 1", s.Rets)
	}
	if s.ResolvedIndirect != 2 {
		t.Errorf("ResolvedIndirect = %d, want 2", s.ResolvedIndirect)
	}
	if s.Functions != 4 {
		t.Errorf("Functions = %d, want 4", s.Functions)
	}
	// helper has ret; main/fn/noret do not (fn exits via jmpr).
	if s.FuncsWithRet != 1 || s.FuncsWithoutRet != 3 {
		t.Errorf("FuncsWithRet=%d FuncsWithoutRet=%d, want 1/3",
			s.FuncsWithRet, s.FuncsWithoutRet)
	}
	if s.Instructions != len(g.Insts) || s.BasicBlocks != len(g.Blocks) {
		t.Error("instruction/block counts inconsistent")
	}
}

func TestSafeReturnSites(t *testing.T) {
	g := build(t, `
.entry main
main:
	call normal       ; safe
	call picky        ; unsafe: callee pops RA
	movi r5, normal
	callr r5          ; unsafe: indirect call
	halt
.func normal
normal:
	movi r0, 1
	ret
.func picky
picky:
	pop r4            ; reads its own return address (PIC idiom)
	jmpr r4
`)
	sites := g.SafeReturnSites()
	if len(sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(sites))
	}
	normal, _ := g.Img.Lookup("normal")
	picky, _ := g.Img.Lookup("picky")
	for _, in := range g.Insts {
		switch {
		case in.Op == isa.OpCall && in.Target == normal:
			if !sites[in.Addr] {
				t.Error("call normal should be safe")
			}
		case in.Op == isa.OpCall && in.Target == picky:
			if sites[in.Addr] {
				t.Error("call picky should be unsafe")
			}
		case in.Op == isa.OpCallR:
			if sites[in.Addr] {
				t.Error("callr should be unsafe")
			}
		}
	}
}

func TestFunctionsExtents(t *testing.T) {
	g := build(t, `
.entry main
.func main
main:
	nop
	ret
.func second
second:
	nop
	nop
	halt
`)
	fns := g.Functions()
	if len(fns) != 2 {
		t.Fatalf("functions = %d, want 2", len(fns))
	}
	if fns[0].Name != "main" || !fns[0].HasRet || fns[0].Insts != 2 {
		t.Errorf("main = %+v", fns[0])
	}
	if fns[1].Name != "second" || fns[1].HasRet || fns[1].Insts != 3 {
		t.Errorf("second = %+v", fns[1])
	}
	if fns[0].End != fns[1].Entry {
		t.Errorf("main end %#x != second entry %#x", fns[0].End, fns[1].Entry)
	}
}

func TestBuildRejectsEmptyImage(t *testing.T) {
	img := &program.Image{
		Name:  "empty",
		Entry: 0x1000,
		Segments: []program.Segment{{
			Name: program.SegText, Addr: 0x1000,
			Data: make([]byte, 8), Perm: program.PermR | program.PermX,
		}},
	}
	if _, err := Build(img); err == nil {
		t.Error("Build of instruction-free image succeeded")
	}
}

func TestEdgeKindString(t *testing.T) {
	kinds := []EdgeKind{EdgeFall, EdgeJump, EdgeTaken, EdgeCall, EdgeCallFall, EdgeIndirect}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if EdgeKind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestBlockEnd(t *testing.T) {
	g := build(t, diamondSrc)
	for _, b := range g.Blocks {
		if b.End() <= b.Start {
			t.Errorf("block at %#x has End %#x", b.Start, b.End())
		}
		// Blocks tile the text: each instruction in exactly one block.
		n := 0
		for _, in := range b.Insts {
			if in.Addr < b.Start || in.Addr >= b.End() {
				t.Errorf("inst %#x outside block [%#x,%#x)", in.Addr, b.Start, b.End())
			}
			n++
		}
		if n == 0 {
			t.Errorf("empty block at %#x", b.Start)
		}
	}
}

func TestReachableFindsDeadCode(t *testing.T) {
	g := build(t, `
.entry main
main:
	call used
	halt
.func used
used:
	ret
.func dead
dead:
	movi r1, 1
	movi r2, 2
	ret
`)
	reach := g.Reachable()
	used, _ := g.Img.Lookup("used")
	dead, _ := g.Img.Lookup("dead")
	if !reach[g.Img.Entry] || !reach[used] {
		t.Error("live blocks not reachable")
	}
	if reach[dead] {
		t.Error("dead function marked reachable")
	}
	total := len(g.Insts)
	live := g.ReachableInsts()
	if live >= total {
		t.Errorf("reachable %d >= total %d despite dead code", live, total)
	}
	if live < 3 {
		t.Errorf("reachable %d implausibly low", live)
	}
}

func TestReachableFollowsIndirectCandidates(t *testing.T) {
	g := build(t, `
.entry main
main:
	movi r5, handler
	addi r5, 0        ; defeat constant resolution: stays conservative
	jmpr r5
	halt
.func handler
handler:
	ret
`)
	handler, _ := g.Img.Lookup("handler")
	if !g.Reachable()[handler] {
		t.Error("conservative indirect edge not followed")
	}
}
