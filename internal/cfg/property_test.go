package cfg_test

import (
	"testing"

	"vcfr/internal/cfg"
	"vcfr/internal/workloads"
)

// TestGraphStructuralInvariants checks, over a battery of random structured
// programs and all SPEC analogs, the properties every well-formed CFG must
// have: blocks tile the instruction list exactly, every edge targets a block
// start, predecessors mirror successors, and control transfers only ever end
// blocks.
func TestGraphStructuralInvariants(t *testing.T) {
	var graphs []*cfg.Graph
	for seed := uint32(0); seed < 12; seed++ {
		g, err := cfg.Build(workloads.Random(seed).Img)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		graphs = append(graphs, g)
	}
	for _, name := range workloads.SpecNames {
		g, err := cfg.Build(workloads.MustByName(name, 1).Img)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		graphs = append(graphs, g)
	}

	for _, g := range graphs {
		// Blocks tile the instruction list: every instruction in exactly one
		// block, blocks contiguous, in address order.
		covered := 0
		for _, start := range g.Order {
			b := g.Blocks[start]
			if b.Start != b.Insts[0].Addr {
				t.Fatalf("%s: block start %#x != first inst %#x",
					g.Img.Name, b.Start, b.Insts[0].Addr)
			}
			prevEnd := b.Start
			for _, in := range b.Insts {
				if in.Addr != prevEnd {
					t.Fatalf("%s: gap inside block at %#x", g.Img.Name, in.Addr)
				}
				prevEnd = in.NextAddr()
				covered++
			}
			// Only the final instruction may transfer control.
			for _, in := range b.Insts[:len(b.Insts)-1] {
				if in.Class().IsControl() {
					t.Fatalf("%s: control transfer %v inside block %#x",
						g.Img.Name, in, b.Start)
				}
			}
		}
		if covered != len(g.Insts) {
			t.Fatalf("%s: blocks cover %d of %d instructions",
				g.Img.Name, covered, len(g.Insts))
		}

		// Every successor edge targets a block start, and appears in the
		// target's predecessor list.
		for _, start := range g.Order {
			b := g.Blocks[start]
			for _, e := range b.Succs {
				tb, ok := g.Blocks[e.To]
				if !ok {
					t.Fatalf("%s: edge %#x -> %#x targets a non-block",
						g.Img.Name, b.Start, e.To)
				}
				found := false
				for _, p := range tb.Preds {
					if p == b.Start {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: edge %#x -> %#x missing from preds",
						g.Img.Name, b.Start, e.To)
				}
			}
		}

		// Resolved indirect targets are valid instruction starts.
		for addr, ts := range g.IndirectTargets {
			if _, ok := g.InstAt[addr]; !ok {
				t.Fatalf("%s: resolved transfer at non-instruction %#x", g.Img.Name, addr)
			}
			for _, target := range ts {
				if _, ok := g.InstAt[target]; !ok {
					t.Fatalf("%s: resolved target %#x not an instruction", g.Img.Name, target)
				}
			}
		}

		// The entry block is always reachable and counted.
		if !g.Reachable()[g.Img.Entry] {
			t.Fatalf("%s: entry unreachable", g.Img.Name)
		}
	}
}
