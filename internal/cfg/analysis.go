package cfg

import (
	"sort"

	"vcfr/internal/isa"
)

// regValue is the lattice value tracked by the block-local constant
// propagation: unknown, a known 32-bit constant, or a value loaded from a
// known jump-table base.
type regValue struct {
	kind  uint8 // 0 unknown, 1 const, 2 table-load
	c     uint32
	table uint32 // table base for kind 2
}

// resolveIndirect performs the constant-propagation pass of Sec. IV-A: code
// addresses propagate from movi producers (and jump-table loads through
// relocated tables) to indirect-transfer consumers. Resolved transfers get
// exact target sets; everything else stays conservative.
func (g *Graph) resolveIndirect() {
	g.IndirectTargets = make(map[uint32][]uint32)
	for _, start := range g.Order {
		b := g.Blocks[start]
		var regs [isa.NumRegs]regValue
		for _, in := range b.Insts {
			switch in.Op {
			case isa.OpMovRI:
				regs[in.Rd] = regValue{kind: 1, c: uint32(in.Imm)}
			case isa.OpMovRR:
				regs[in.Rd] = regs[in.Rs]
			case isa.OpLea:
				if regs[in.Rs].kind == 1 {
					regs[in.Rd] = regValue{kind: 1, c: regs[in.Rs].c + uint32(in.Imm)}
				} else {
					regs[in.Rd] = regValue{}
				}
			case isa.OpLoad:
				if regs[in.Rs].kind == 1 {
					regs[in.Rd] = regValue{kind: 2, table: regs[in.Rs].c + uint32(in.Imm)}
				} else {
					regs[in.Rd] = regValue{}
				}
			case isa.OpLoadR:
				// Indexed load from a constant base: a jump-table access.
				if regs[in.Rs].kind == 1 {
					regs[in.Rd] = regValue{kind: 2, table: regs[in.Rs].c}
				} else if regs[in.Rt].kind == 1 {
					regs[in.Rd] = regValue{kind: 2, table: regs[in.Rt].c}
				} else {
					regs[in.Rd] = regValue{}
				}
			case isa.OpJmpR, isa.OpCallR:
				switch v := regs[in.Rd]; v.kind {
				case 1:
					if _, ok := g.InstAt[v.c]; ok {
						g.IndirectTargets[in.Addr] = []uint32{v.c}
					}
				case 2:
					if ts := g.tableTargets(v.table); len(ts) > 0 {
						g.IndirectTargets[in.Addr] = ts
					}
				}
			case isa.OpCall:
				// Calls clobber the constant state conservatively.
				regs = [isa.NumRegs]regValue{}
			default:
				// Any other writer invalidates its destination register.
				if writesRd(in.Op) {
					regs[in.Rd] = regValue{}
				}
			}
		}
	}
}

// writesRd reports whether the opcode writes its Rd operand (for the
// constant-propagation kill set). Control transfers and stores do not.
func writesRd(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl,
		isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpMod, isa.OpNeg,
		isa.OpNot, isa.OpAddI, isa.OpSubI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
		isa.OpShlI, isa.OpShrI, isa.OpSarI, isa.OpLoadB, isa.OpPop:
		return true
	default:
		return false
	}
}

// tableTargets reads the jump table at base: consecutive relocated words,
// each of which must be an instruction start. It stops at the first
// non-relocated word, so adjacent data never leaks into the target set.
func (g *Graph) tableTargets(base uint32) []uint32 {
	relocAt := make(map[uint32]bool, len(g.Img.Relocs))
	for _, r := range g.Img.Relocs {
		if !r.InCode {
			relocAt[r.Addr] = true
		}
	}
	var out []uint32
	seen := make(map[uint32]bool)
	for addr := base; relocAt[addr]; addr += 4 {
		v, err := g.Img.ReadWord(addr)
		if err != nil {
			break
		}
		if _, ok := g.InstAt[v]; !ok {
			break
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reachable performs the recursive-descent pass (the IDA Pro role in the
// paper's toolchain): the set of basic-block start addresses reachable from
// the entry point, following direct edges, call edges, and the conservative
// indirect-target edges. Return edges are implicit: a call contributes its
// fall-through (EdgeCallFall).
func (g *Graph) Reachable() map[uint32]bool {
	seen := make(map[uint32]bool)
	work := []uint32{g.Img.Entry}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[addr] {
			continue
		}
		b, ok := g.Blocks[addr]
		if !ok {
			continue
		}
		seen[addr] = true
		for _, e := range b.Succs {
			if !seen[e.To] {
				work = append(work, e.To)
			}
		}
	}
	return seen
}

// ReachableInsts counts instructions inside reachable blocks.
func (g *Graph) ReachableInsts() int {
	reach := g.Reachable()
	n := 0
	for start, b := range g.Blocks {
		if reach[start] {
			n += len(b.Insts)
		}
	}
	return n
}

// Func is one function discovered from the symbol table, with the
// ret-presence analysis behind the paper's Fig. 9.
type Func struct {
	Name   string
	Entry  uint32
	End    uint32 // first address past the function's extent
	HasRet bool
	Insts  int
}

// Functions partitions the text segment by function symbols (sorted by
// address; each function extends to the next function or the end of text)
// and reports, per function, whether it contains a ret instruction.
func (g *Graph) Functions() []Func {
	var syms []struct {
		name string
		addr uint32
	}
	for _, s := range g.Img.Symbols {
		if s.Func {
			syms = append(syms, struct {
				name string
				addr uint32
			}{s.Name, s.Addr})
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	text := g.Img.Text()
	out := make([]Func, 0, len(syms))
	for i, s := range syms {
		end := text.End()
		if i+1 < len(syms) {
			end = syms[i+1].addr
		}
		f := Func{Name: s.name, Entry: s.addr, End: end}
		for _, in := range g.Insts {
			if in.Addr < s.addr || in.Addr >= end {
				continue
			}
			f.Insts++
			if in.Op == isa.OpRet {
				f.HasRet = true
			}
		}
		out = append(out, f)
	}
	return out
}

// SafeReturnSites classifies every call instruction: can its return address
// be randomized without architectural support? Per the paper (Sec. IV-A),
// indirect calls are never randomized, and calls whose callee directly
// reads the return address off the stack (the PIC "call next; pop r" idiom)
// are unsafe for the software rewriting option.
func (g *Graph) SafeReturnSites() map[uint32]bool {
	out := make(map[uint32]bool)
	for _, in := range g.Insts {
		switch in.Class() {
		case isa.ClassCall:
			out[in.Addr] = !g.calleeReadsRA(in.Target)
		case isa.ClassCallR:
			out[in.Addr] = false
		}
	}
	return out
}

// calleeReadsRA reports whether the callee's entry block accesses the return
// address on the stack before adjusting sp: a leading pop, or a load from
// [sp+0].
func (g *Graph) calleeReadsRA(entry uint32) bool {
	b, ok := g.Blocks[entry]
	if !ok {
		return true // unknown callee: be conservative
	}
	for _, in := range b.Insts {
		switch {
		case in.Op == isa.OpPop:
			return true
		case (in.Op == isa.OpLoad || in.Op == isa.OpLea) && in.Rs == isa.RegSP && in.Imm == 0:
			return in.Op == isa.OpLoad
		case in.Op == isa.OpPush, in.Op == isa.OpCall, in.Op == isa.OpCallR:
			return false // sp moved; the RA slot is no longer [sp]
		case writesRd(in.Op) && in.Rd == isa.RegSP,
			in.Op == isa.OpMovRR && in.Rd == isa.RegSP,
			in.Op == isa.OpMovRI && in.Rd == isa.RegSP:
			return false // sp rewritten; give up tracking (conservative for reads via copies)
		}
	}
	return false
}
