package program

import "encoding/binary"

// pageBits selects a 4 KiB page, matching the TLB page size used by the
// cycle model.
const (
	pageBits = 12
	pageSize = 1 << pageBits
)

// AddressSpace is a sparse, paged, byte-addressable 32-bit memory. It is the
// single functional-memory implementation shared by the emulator and the
// cycle simulator (the cache hierarchy adds timing on top; the bytes live
// here).
//
// Pages materialize on first touch and read as zero before any write, like
// anonymous demand-zero pages. The zero value is ready to use.
type AddressSpace struct {
	pages map[uint32]*[pageSize]byte
	// last caches the most recently touched page: instruction fetch and
	// stack traffic are heavily page-local, and the map lookup dominates
	// emulation cost without it.
	lastIdx  uint32
	lastPage *[pageSize]byte
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[uint32]*[pageSize]byte)}
}

func (as *AddressSpace) page(addr uint32) *[pageSize]byte {
	idx := addr >> pageBits
	if as.lastPage != nil && as.lastIdx == idx {
		return as.lastPage
	}
	if as.pages == nil {
		as.pages = make(map[uint32]*[pageSize]byte)
	}
	p := as.pages[idx]
	if p == nil {
		p = new([pageSize]byte)
		as.pages[idx] = p
	}
	as.lastIdx, as.lastPage = idx, p
	return p
}

// LoadImage copies every segment of img into the address space.
func (as *AddressSpace) LoadImage(img *Image) {
	for i := range img.Segments {
		as.WriteBytes(img.Segments[i].Addr, img.Segments[i].Data)
	}
}

// ByteAt returns the byte at addr.
func (as *AddressSpace) ByteAt(addr uint32) byte {
	return as.page(addr)[addr&(pageSize-1)]
}

// SetByte stores b at addr.
func (as *AddressSpace) SetByte(addr uint32, b byte) {
	as.page(addr)[addr&(pageSize-1)] = b
}

// ReadWord returns the little-endian 32-bit word at addr. Unaligned and
// page-straddling reads are legal, as on x86.
func (as *AddressSpace) ReadWord(addr uint32) uint32 {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		return binary.LittleEndian.Uint32(as.page(addr)[off:])
	}
	var b [4]byte
	as.ReadBytes(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteWord stores the little-endian 32-bit word v at addr.
func (as *AddressSpace) WriteWord(addr uint32, v uint32) {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		binary.LittleEndian.PutUint32(as.page(addr)[off:], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	as.WriteBytes(addr, b[:])
}

// ReadBytes fills dst with the bytes starting at addr.
func (as *AddressSpace) ReadBytes(addr uint32, dst []byte) {
	for len(dst) > 0 {
		off := addr & (pageSize - 1)
		n := copy(dst, as.page(addr)[off:])
		dst = dst[n:]
		addr += uint32(n)
	}
}

// WriteBytes copies src into memory starting at addr.
func (as *AddressSpace) WriteBytes(addr uint32, src []byte) {
	for len(src) > 0 {
		off := addr & (pageSize - 1)
		n := copy(as.page(addr)[off:], src)
		src = src[n:]
		addr += uint32(n)
	}
}

// PageCount returns the number of materialized pages (test/diagnostic aid).
func (as *AddressSpace) PageCount() int { return len(as.pages) }
