package program

import (
	"strings"
	"testing"
)

// testImage builds a small, valid image for reuse across tests.
func testImage() *Image {
	return &Image{
		Name:  "t",
		Entry: 0x1004,
		Segments: []Segment{
			{Name: SegText, Addr: 0x1000, Data: make([]byte, 64), Perm: PermR | PermX},
			{Name: SegData, Addr: 0x2000, Data: make([]byte, 32), Perm: PermR | PermW},
		},
		Symbols: []Symbol{
			{Name: "main", Addr: 0x1004, Size: 16, Func: true},
			{Name: "table", Addr: 0x2000, Size: 8},
		},
		Relocs: []Reloc{
			{Addr: 0x1010, InCode: true},
			{Addr: 0x2004, InCode: false},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := testImage().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Image)
		want string
	}{
		{"no text", func(im *Image) { im.Segments[0].Perm = PermR }, "executable segments"},
		{"two text", func(im *Image) { im.Segments[1].Perm = PermR | PermX }, "executable segments"},
		{"empty segment", func(im *Image) { im.Segments[1].Data = nil }, "empty"},
		{"overlap", func(im *Image) { im.Segments[1].Addr = 0x1020 }, "overlap"},
		{"entry outside text", func(im *Image) { im.Entry = 0x2000 }, "entry"},
		{"reloc outside", func(im *Image) { im.Relocs[0].Addr = 0x9000 }, "relocation"},
		{"reloc at segment edge", func(im *Image) { im.Relocs[0].Addr = 0x103e }, "relocation"},
		{"reloc kind mismatch", func(im *Image) { im.Relocs[0].InCode = false }, "InCode"},
		{"symbol outside", func(im *Image) { im.Symbols[0].Addr = 0x9000 }, "symbol"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			img := testImage()
			tt.mut(img)
			err := img.Validate()
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestSegmentQueries(t *testing.T) {
	img := testImage()
	if img.Seg(SegText) == nil || img.Seg(SegData) == nil {
		t.Fatal("Seg lookup failed")
	}
	if img.Seg("bss") != nil {
		t.Error("Seg(bss) != nil")
	}
	if got := img.Text(); got == nil || got.Name != SegText {
		t.Errorf("Text() = %v", got)
	}
	if s := img.SegAt(0x1000); s == nil || s.Name != SegText {
		t.Error("SegAt(text start) wrong")
	}
	if s := img.SegAt(0x103f); s == nil || s.Name != SegText {
		t.Error("SegAt(text last byte) wrong")
	}
	if s := img.SegAt(0x1040); s != nil {
		t.Error("SegAt(text end) should be nil")
	}
}

func TestReadWriteWord(t *testing.T) {
	img := testImage()
	if err := img.WriteWord(0x2004, 0xdeadbeef); err != nil {
		t.Fatalf("WriteWord: %v", err)
	}
	got, err := img.ReadWord(0x2004)
	if err != nil {
		t.Fatalf("ReadWord: %v", err)
	}
	if got != 0xdeadbeef {
		t.Errorf("ReadWord = %#x", got)
	}
	if _, err := img.ReadWord(0x201e); err == nil {
		t.Error("ReadWord straddling segment end succeeded")
	}
	if err := img.WriteWord(0x5000, 1); err == nil {
		t.Error("WriteWord outside image succeeded")
	}
}

func TestSymbolLookup(t *testing.T) {
	img := testImage()
	addr, ok := img.Lookup("main")
	if !ok || addr != 0x1004 {
		t.Errorf("Lookup(main) = %#x, %v", addr, ok)
	}
	if _, ok := img.Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	if s := img.SymbolAt(0x100a); s == nil || s.Name != "main" {
		t.Errorf("SymbolAt(0x100a) = %v", s)
	}
	if s := img.SymbolAt(0x1020); s != nil {
		t.Errorf("SymbolAt(gap) = %v, want nil", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	img := testImage()
	cp := img.Clone()
	cp.Segments[0].Data[0] = 0xff
	cp.Relocs[0].Addr = 0x1014
	cp.Symbols[0].Name = "changed"
	if img.Segments[0].Data[0] == 0xff {
		t.Error("Clone shares segment data")
	}
	if img.Relocs[0].Addr == 0x1014 {
		t.Error("Clone shares relocs")
	}
	if img.Symbols[0].Name == "changed" {
		t.Error("Clone shares symbols")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	img := testImage()
	img.Segments[0].Data[3] = 0xab
	data, err := img.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Name != img.Name || got.Entry != img.Entry {
		t.Error("header mismatch after round trip")
	}
	if got.Segments[0].Data[3] != 0xab {
		t.Error("segment data mismatch after round trip")
	}
	if len(got.Relocs) != len(img.Relocs) || len(got.Symbols) != len(img.Symbols) {
		t.Error("tables mismatch after round trip")
	}
	if _, err := Unmarshal([]byte("not gob")); err == nil {
		t.Error("Unmarshal of garbage succeeded")
	}
}

func TestPermString(t *testing.T) {
	if got := (PermR | PermX).String(); got != "r-x" {
		t.Errorf("PermR|PermX = %q", got)
	}
	if got := Perm(0).String(); got != "---" {
		t.Errorf("Perm(0) = %q", got)
	}
	if got := (PermR | PermW | PermX).String(); got != "rwx" {
		t.Errorf("rwx = %q", got)
	}
}
