// Package program defines the binary image container shared by the
// assembler, the ILR rewriter, the emulator, and the cycle simulator.
//
// An Image is the moral equivalent of a statically linked executable: named
// segments at fixed virtual addresses, an entry point, a symbol table, and —
// critically for ILR — a relocation table that records every 32-bit field
// holding a code address. Hiser et al.'s rewriter (and ours, in package ilr)
// relies on relocations to retarget direct control transfers and to patch
// jump tables and function-pointer tables stored in data.
package program

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
)

// Perm is a segment permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

// String renders the permissions in "rwx" form.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Conventional segment names.
const (
	SegText  = "text"
	SegData  = "data"
	SegStack = "stack"
)

// Segment is a contiguous range of initialized memory in the image.
type Segment struct {
	Name string
	Addr uint32
	Data []byte
	Perm Perm
}

// End returns the first address past the segment.
func (s *Segment) End() uint32 { return s.Addr + uint32(len(s.Data)) }

// Contains reports whether addr falls inside the segment.
func (s *Segment) Contains(addr uint32) bool { return addr >= s.Addr && addr < s.End() }

// Symbol names an address in the image.
type Symbol struct {
	Name string
	Addr uint32
	Size uint32
	Func bool // true for function entry points
}

// Reloc records one 32-bit little-endian field that holds a code address.
//
// InCode distinguishes the target field of a direct-transfer instruction
// (patched by retargeting the instruction) from a code pointer stored in a
// data word (a jump-table slot or function-pointer constant, patched in
// place). Both must be updated consistently when instruction addresses move.
type Reloc struct {
	Addr   uint32 // address of the 32-bit field itself
	InCode bool   // true: instruction target field; false: data word
}

// Image is a loadable program.
type Image struct {
	Name     string
	Entry    uint32
	Segments []Segment
	Symbols  []Symbol
	Relocs   []Reloc
}

// Seg returns the named segment, or nil if absent.
func (img *Image) Seg(name string) *Segment {
	for i := range img.Segments {
		if img.Segments[i].Name == name {
			return &img.Segments[i]
		}
	}
	return nil
}

// Text returns the executable segment. Every well-formed image has exactly
// one; Validate enforces this.
func (img *Image) Text() *Segment {
	for i := range img.Segments {
		if img.Segments[i].Perm&PermX != 0 {
			return &img.Segments[i]
		}
	}
	return nil
}

// SegAt returns the segment containing addr, or nil.
func (img *Image) SegAt(addr uint32) *Segment {
	for i := range img.Segments {
		if img.Segments[i].Contains(addr) {
			return &img.Segments[i]
		}
	}
	return nil
}

// ReadWord reads the 32-bit little-endian word at addr from the image's
// initialized segments.
func (img *Image) ReadWord(addr uint32) (uint32, error) {
	seg := img.SegAt(addr)
	if seg == nil || !seg.Contains(addr+3) {
		return 0, fmt.Errorf("program: word read at %#x outside image", addr)
	}
	return binary.LittleEndian.Uint32(seg.Data[addr-seg.Addr:]), nil
}

// WriteWord writes the 32-bit little-endian word at addr in the image's
// initialized segments. It is used by the rewriter to patch data relocations.
func (img *Image) WriteWord(addr, val uint32) error {
	seg := img.SegAt(addr)
	if seg == nil || !seg.Contains(addr+3) {
		return fmt.Errorf("program: word write at %#x outside image", addr)
	}
	binary.LittleEndian.PutUint32(seg.Data[addr-seg.Addr:], val)
	return nil
}

// SymbolAt returns the symbol whose range covers addr, preferring function
// symbols, or nil if none does.
func (img *Image) SymbolAt(addr uint32) *Symbol {
	var best *Symbol
	for i := range img.Symbols {
		s := &img.Symbols[i]
		if addr >= s.Addr && (s.Size == 0 && addr == s.Addr || addr < s.Addr+s.Size) {
			if best == nil || s.Func && !best.Func {
				best = s
			}
		}
	}
	return best
}

// Lookup returns the address of the named symbol.
func (img *Image) Lookup(name string) (uint32, bool) {
	for i := range img.Symbols {
		if img.Symbols[i].Name == name {
			return img.Symbols[i].Addr, true
		}
	}
	return 0, false
}

// Clone returns a deep copy of the image. The rewriter clones before
// mutating so callers keep the original layout.
func (img *Image) Clone() *Image {
	out := &Image{
		Name:     img.Name,
		Entry:    img.Entry,
		Segments: make([]Segment, len(img.Segments)),
		Symbols:  append([]Symbol(nil), img.Symbols...),
		Relocs:   append([]Reloc(nil), img.Relocs...),
	}
	for i, s := range img.Segments {
		out.Segments[i] = Segment{
			Name: s.Name,
			Addr: s.Addr,
			Data: append([]byte(nil), s.Data...),
			Perm: s.Perm,
		}
	}
	return out
}

// Validate checks structural invariants: exactly one executable segment,
// non-overlapping segments, entry inside the text segment, relocations and
// symbols inside some segment.
func (img *Image) Validate() error {
	var text int
	for i := range img.Segments {
		s := &img.Segments[i]
		if len(s.Data) == 0 {
			return fmt.Errorf("program: segment %q is empty", s.Name)
		}
		if s.End() < s.Addr {
			return fmt.Errorf("program: segment %q wraps the address space", s.Name)
		}
		if s.Perm&PermX != 0 {
			text++
		}
	}
	if text != 1 {
		return fmt.Errorf("program: image has %d executable segments, want 1", text)
	}
	segs := make([]*Segment, 0, len(img.Segments))
	for i := range img.Segments {
		segs = append(segs, &img.Segments[i])
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Addr < segs[j].Addr })
	for i := 1; i < len(segs); i++ {
		if segs[i].Addr < segs[i-1].End() {
			return fmt.Errorf("program: segments %q and %q overlap",
				segs[i-1].Name, segs[i].Name)
		}
	}
	if t := img.Text(); !t.Contains(img.Entry) {
		return fmt.Errorf("program: entry %#x outside text [%#x,%#x)",
			img.Entry, t.Addr, t.End())
	}
	for _, r := range img.Relocs {
		seg := img.SegAt(r.Addr)
		if seg == nil || !seg.Contains(r.Addr+3) {
			return fmt.Errorf("program: relocation at %#x outside image", r.Addr)
		}
		if r.InCode != (seg.Perm&PermX != 0) {
			return fmt.Errorf("program: relocation at %#x: InCode=%v but segment %q perm %v",
				r.Addr, r.InCode, seg.Name, seg.Perm)
		}
	}
	for _, s := range img.Symbols {
		if img.SegAt(s.Addr) == nil {
			return fmt.Errorf("program: symbol %q at %#x outside image", s.Name, s.Addr)
		}
	}
	return nil
}

// Marshal serializes the image (gob encoding).
func (img *Image) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("program: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes an image produced by Marshal.
func Unmarshal(data []byte) (*Image, error) {
	var img Image
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("program: unmarshal: %w", err)
	}
	return &img, nil
}
