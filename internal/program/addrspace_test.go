package program

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddressSpaceZeroFill(t *testing.T) {
	as := NewAddressSpace()
	if got := as.ByteAt(0x12345); got != 0 {
		t.Errorf("untouched byte = %d, want 0", got)
	}
	if got := as.ReadWord(0xffff_fff0); got != 0 {
		t.Errorf("untouched word = %d, want 0", got)
	}
}

func TestAddressSpaceByteWord(t *testing.T) {
	as := NewAddressSpace()
	as.WriteWord(0x1000, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if got := as.ByteAt(0x1000 + uint32(i)); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
	as.SetByte(0x1001, 0xff)
	if got := as.ReadWord(0x1000); got != 0x0403ff01 {
		t.Errorf("word = %#x, want 0x0403ff01", got)
	}
}

func TestAddressSpacePageStraddle(t *testing.T) {
	as := NewAddressSpace()
	// A word that straddles the 4 KiB page boundary at 0x2000.
	as.WriteWord(0x1ffe, 0xaabbccdd)
	if got := as.ReadWord(0x1ffe); got != 0xaabbccdd {
		t.Errorf("straddling word = %#x", got)
	}
	if got := as.ByteAt(0x2000); got != 0xbb {
		t.Errorf("byte past boundary = %#x, want 0xbb", got)
	}
	buf := make([]byte, 10000) // spans three pages
	for i := range buf {
		buf[i] = byte(i)
	}
	as.WriteBytes(0x2ff0, buf)
	got := make([]byte, len(buf))
	as.ReadBytes(0x2ff0, got)
	if !bytes.Equal(buf, got) {
		t.Error("multi-page ReadBytes/WriteBytes mismatch")
	}
}

func TestAddressSpaceLoadImage(t *testing.T) {
	img := testImage()
	img.Segments[0].Data[0] = 0x42
	img.Segments[1].Data[5] = 0x99
	as := NewAddressSpace()
	as.LoadImage(img)
	if got := as.ByteAt(0x1000); got != 0x42 {
		t.Errorf("text byte = %#x", got)
	}
	if got := as.ByteAt(0x2005); got != 0x99 {
		t.Errorf("data byte = %#x", got)
	}
}

func TestAddressSpaceSparse(t *testing.T) {
	as := NewAddressSpace()
	as.SetByte(0, 1)
	as.SetByte(0x8000_0000, 2)
	as.SetByte(0xffff_ffff, 3)
	if as.PageCount() != 3 {
		t.Errorf("PageCount = %d, want 3", as.PageCount())
	}
}

// TestQuickAddressSpaceWordRoundTrip: any (addr, value) word write reads back
// identically, including unaligned and straddling addresses.
func TestQuickAddressSpaceWordRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	f := func(addr, val uint32) bool {
		as.WriteWord(addr, val)
		return as.ReadWord(addr) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroValueAddressSpaceUsable(t *testing.T) {
	var as AddressSpace
	as.WriteWord(0x10, 7)
	if as.ReadWord(0x10) != 7 {
		t.Error("zero-value AddressSpace broken")
	}
}

func BenchmarkAddressSpaceReadWord(b *testing.B) {
	as := NewAddressSpace()
	as.WriteWord(0x1000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		as.ReadWord(0x1000)
	}
}
