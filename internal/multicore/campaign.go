// Package multicore runs the multi-tenant interference campaign: a grid of
// cores × tenants cells, each cell co-running a tenant mix on a scheduled
// cluster (shared L2, private DRCs, quantum time-sharing) under every
// architecture mode, judged against per-tenant solo references. The headline
// is the consolidation claim of Sec. IV-D: because VCFR randomizes only
// read-only instruction-address state, its co-run degradation tracks the
// baseline's, while naive ILR pays extra for the scattered footprint its
// location maps press into the shared L2.
package multicore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

// Cell is one cores × tenants grid point.
type Cell struct {
	Cores   int
	Tenants int
}

// String renders the canonical cell name, e.g. "2c4t".
func (c Cell) String() string { return fmt.Sprintf("%dc%dt", c.Cores, c.Tenants) }

// ParseCells parses a comma-separated cell list ("2c4t,1c2t").
func ParseCells(s string) ([]Cell, error) {
	var out []Cell
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		var c Cell
		rest, ok := strings.CutSuffix(tok, "t")
		if ok {
			if cs, ts, found := strings.Cut(rest, "c"); found {
				var err1, err2 error
				c.Cores, err1 = strconv.Atoi(cs)
				c.Tenants, err2 = strconv.Atoi(ts)
				ok = err1 == nil && err2 == nil
			} else {
				ok = false
			}
		}
		if !ok || c.Cores < 1 || c.Tenants < 1 {
			return nil, fmt.Errorf("multicore: bad cell %q (want <cores>c<tenants>t, e.g. 2c4t)", tok)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("multicore: empty cell list")
	}
	return out, nil
}

// Config scopes one interference campaign. The zero value (after
// withDefaults) is the canonical campaign every surface runs, so the same
// Config always yields the same table bytes.
type Config struct {
	// Workloads is the tenant pool: tenant i of a cell runs workload
	// Workloads[i%len], randomization epoch i/len (same program, fresh
	// layout seed). Empty means DefaultWorkloads.
	Workloads []string
	// Modes to evaluate; empty means all three architectures.
	Modes []cpu.Mode
	// Cells is the cores × tenants grid; empty means DefaultCells.
	Cells []Cell
	// Quantum is the scheduler time slice in committed instructions.
	// <= 0 means cpu.DefaultQuantum.
	Quantum uint64
	// Seed drives every per-instance layout seed. 0 means 42.
	Seed int64
	// Scale multiplies workload iteration counts. <= 0 means 1.
	Scale int
	// Spread is the ILR scatter factor. <= 0 means 8.
	Spread int
	// MaxInsts caps each tenant (and each solo reference). 0 means 25000.
	MaxInsts uint64
}

// DefaultWorkloads is the canonical tenant pool: the same three SPEC analogs
// the fault campaign uses, behaviorally distinct enough that co-tenants
// genuinely fight over the shared L2.
func DefaultWorkloads() []string { return []string{"bzip2", "sjeng", "xalan"} }

// DefaultCells is the canonical grid: one cell isolating pure shared-L2
// contention (every tenant alone on its core) and one isolating the
// switch-in cost (two tenants time-sharing one core).
func DefaultCells() []Cell { return []Cell{{Cores: 2, Tenants: 2}, {Cores: 1, Tenants: 2}} }

// AllModes returns the three architecture modes in report order.
func AllModes() []cpu.Mode {
	return []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}
}

// ParseModes maps a CLI/request mode string onto the campaign's mode list.
func ParseModes(s string) ([]cpu.Mode, error) {
	switch s {
	case "", "all":
		return AllModes(), nil
	case "baseline":
		return []cpu.Mode{cpu.ModeBaseline}, nil
	case "naive":
		return []cpu.Mode{cpu.ModeNaiveILR}, nil
	case "vcfr":
		return []cpu.Mode{cpu.ModeVCFR}, nil
	}
	return nil, fmt.Errorf("multicore: unknown mode %q (want baseline, naive, vcfr, or all)", s)
}

func (c Config) withDefaults() Config {
	if len(c.Workloads) == 0 {
		c.Workloads = DefaultWorkloads()
	}
	if len(c.Modes) == 0 {
		c.Modes = AllModes()
	}
	if len(c.Cells) == 0 {
		c.Cells = DefaultCells()
	}
	if c.Quantum == 0 {
		c.Quantum = cpu.DefaultQuantum
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Spread <= 0 {
		c.Spread = 8
	}
	if c.MaxInsts == 0 {
		c.MaxInsts = 25000
	}
	return c
}

func (c Config) validate() error {
	for _, w := range c.Workloads {
		if _, err := workloads.ByName(w, 1); err != nil {
			return err
		}
	}
	for _, m := range c.Modes {
		switch m {
		case cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR:
		default:
			return fmt.Errorf("multicore: unknown mode %v", m)
		}
	}
	for _, cell := range c.Cells {
		if cell.Cores < 1 || cell.Tenants < 1 {
			return fmt.Errorf("multicore: bad cell %s", cell)
		}
	}
	return nil
}

// Report is one campaign's full result, already in wire-row form (the
// campaign plans in the exact order the envelope pins, so there is nothing
// to re-derive at marshal time).
type Report struct {
	Config    Config
	Rows      []results.MulticoreRow
	Totals    []results.MulticoreTotal
	Summaries []results.MulticoreModeSummary
	// Partial is true when any row carries an error.
	Partial bool
}

// instance is one prepared tenant: a workload at one randomization epoch.
type instance struct {
	workload string
	epoch    int
	seed     int64
	app      *harness.App
	err      error
}

// instanceSeed derives one tenant instance's layout seed from the campaign
// seed and the instance coordinates, so neither worker count nor cell
// membership changes any layout.
func instanceSeed(base int64, workload string, epoch int) int64 {
	return harness.CellSeed(base, "multicore", fmt.Sprintf("%s#%d", workload, epoch))
}

// procFor selects the executed image and randomization artifacts of one
// prepared instance for a mode.
func procFor(app *harness.App, mode cpu.Mode) (cpu.ClusterProc, error) {
	pr := cpu.ClusterProc{Input: app.W.Input, Mode: mode}
	switch mode {
	case cpu.ModeBaseline:
		pr.Img = app.R.Orig
	case cpu.ModeNaiveILR:
		pr.Img, pr.Trans = app.R.Scattered, app.R.Tables
	case cpu.ModeVCFR:
		pr.Img, pr.Trans, pr.RandRA = app.R.VCFR, app.R.Tables, app.R.RandRA
	default:
		return pr, fmt.Errorf("multicore: unknown mode %v", mode)
	}
	return pr, nil
}

// soloRun is one (instance, mode) reference: the tenant alone on one core.
type soloRun struct {
	res  cpu.Result
	err  error
	done bool
}

// clusterRun is one (cell, mode) co-run.
type clusterRun struct {
	out   []cpu.Result
	errs  []error
	sched []cpu.SchedStats
	err   error // constructor/context error covering the whole cell
	done  bool
}

// RunCampaign executes the configured campaign on the runner's worker pool
// and returns the interference table. Solo references and cluster cells are
// independent units sharded across the pool; rows land in the fixed plan
// order (solo rows by instance then mode, then cell rows by cell, mode,
// tenant) regardless of worker count, so identical configs produce
// byte-identical reports. onProgress, if non-nil, receives live completion
// state (CellsDone/CellsTotal count scheduled units).
//
// Cancellation returns the partial report, not an error: finished units keep
// their counters, a cancelled cluster reports each tenant's partial result,
// and unexecuted units carry the context's error in their rows.
func RunCampaign(ctx context.Context, r *harness.Runner, cfg Config, onProgress func(harness.Progress)) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if r == nil {
		r = harness.NewRunner(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Phase 1: prepare one instance per tenant slot of the widest cell.
	// Instances are shared across cells and modes — tenant i means the same
	// image bytes everywhere — so slowdown factors compare like with like.
	maxTenants := 0
	for _, cell := range cfg.Cells {
		if cell.Tenants > maxTenants {
			maxTenants = cell.Tenants
		}
	}
	instances := make([]*instance, maxTenants)
	for i := range instances {
		inst := &instance{
			workload: cfg.Workloads[i%len(cfg.Workloads)],
			epoch:    i / len(cfg.Workloads),
		}
		inst.seed = instanceSeed(cfg.Seed, inst.workload, inst.epoch)
		inst.app, inst.err = harness.Prepare(inst.workload, harness.Config{
			Scale:  cfg.Scale,
			Spread: cfg.Spread,
			Seed:   inst.seed,
		})
		instances[i] = inst
	}

	// Phase 2: run every unit — solo references then cluster cells — on the
	// shared pool. Each unit writes only its own slot, so aggregation order
	// is fixed no matter which worker ran what.
	solos := make([]soloRun, len(instances)*len(cfg.Modes))
	clusters := make([]clusterRun, len(cfg.Cells)*len(cfg.Modes))
	var (
		progMu    sync.Mutex
		doneCount int
		instTotal uint64
	)
	report := func(insts uint64) {
		if onProgress == nil {
			return
		}
		progMu.Lock()
		doneCount++
		instTotal += insts
		p := harness.Progress{CellsDone: doneCount, CellsTotal: len(solos) + len(clusters), Instructions: instTotal}
		progMu.Unlock()
		onProgress(p)
	}
	r.Shard(ctx, len(solos)+len(clusters), func(ctx context.Context, u int) {
		if u < len(solos) {
			inst, mode := instances[u/len(cfg.Modes)], cfg.Modes[u%len(cfg.Modes)]
			s := &solos[u]
			s.done = true
			if inst.err != nil {
				s.err = inst.err
				return
			}
			s.res, _, s.err = inst.app.RunContext(ctx, mode, cfg.MaxInsts, nil)
			report(s.res.Stats.Instructions)
			return
		}
		u -= len(solos)
		cell, mode := cfg.Cells[u/len(cfg.Modes)], cfg.Modes[u%len(cfg.Modes)]
		c := &clusters[u]
		c.done = true
		procs := make([]cpu.ClusterProc, cell.Tenants)
		for i := range procs {
			if err := instances[i].err; err != nil {
				c.err = err
				return
			}
			var err error
			if procs[i], err = procFor(instances[i].app, mode); err != nil {
				c.err = err
				return
			}
		}
		cl, err := cpu.NewScheduledCluster(cpu.DefaultConfig(mode),
			cpu.SchedConfig{Cores: cell.Cores, Quantum: cfg.Quantum}, procs)
		if err != nil {
			c.err = err
			return
		}
		out, runErr := cl.RunContext(ctx, cfg.MaxInsts)
		c.out, c.errs, c.sched = out, cl.Errors(), cl.SchedStats()
		if runErr != nil && errors.Is(runErr, ctx.Err()) {
			c.err = runErr // cancelled mid-cell: every tenant row is partial
		}
		var insts uint64
		for _, res := range out {
			insts += res.Stats.Instructions
		}
		report(insts)
	})

	// Phase 3: aggregate in plan order.
	rep := &Report{Config: cfg}
	soloIPC := make([]float64, len(solos))
	for u, s := range solos {
		inst, mode := instances[u/len(cfg.Modes)], cfg.Modes[u%len(cfg.Modes)]
		row := results.MulticoreRow{
			Cell:     "solo",
			Cores:    1,
			Tenants:  1,
			Mode:     mode.String(),
			Tenant:   u / len(cfg.Modes),
			Workload: inst.workload,
			Epoch:    inst.epoch,
			Seed:     inst.seed,
		}
		switch {
		case s.err != nil:
			row.Error = firstLine(s.err.Error())
		case !s.done:
			row.Error = firstLine(notExecuted(ctx).Error())
		default:
			fillRow(&row, s.res)
			soloIPC[u] = row.IPC
		}
		rep.Rows = append(rep.Rows, row)
	}
	for u, c := range clusters {
		cell, mode := cfg.Cells[u/len(cfg.Modes)], cfg.Modes[u%len(cfg.Modes)]
		total := results.MulticoreTotal{Cell: cell.String(), Mode: mode.String()}
		cores := cell.Cores
		if cores > cell.Tenants {
			cores = cell.Tenants // the cluster clamps idle cores away
		}
		coreCycles := make([]uint64, cores)
		var slowdowns []float64
		for t := 0; t < cell.Tenants; t++ {
			inst := instances[t]
			row := results.MulticoreRow{
				Cell:     cell.String(),
				Cores:    cell.Cores,
				Tenants:  cell.Tenants,
				Mode:     mode.String(),
				Tenant:   t,
				Core:     t % cores,
				Workload: inst.workload,
				Epoch:    inst.epoch,
				Seed:     inst.seed,
			}
			switch {
			case c.err != nil:
				row.Error = firstLine(c.err.Error())
			case !c.done:
				row.Error = firstLine(notExecuted(ctx).Error())
			case c.errs[t] != nil:
				row.Error = firstLine(c.errs[t].Error())
			}
			if c.done && t < len(c.out) {
				res := c.out[t]
				fillRow(&row, res)
				if solo := soloIPC[t*len(cfg.Modes)+u%len(cfg.Modes)]; solo > 0 && row.IPC > 0 && row.Error == "" {
					row.SoloIPC = solo
					row.Slowdown = round4(solo / row.IPC)
					slowdowns = append(slowdowns, row.Slowdown)
				}
				total.Instructions += res.Stats.Instructions
				coreCycles[row.Core] += res.Stats.Cycles
				total.DRCFlushes += res.DRC.Flushes
				total.L2Accesses = res.L2.Accesses // shared: every tenant sees the same L2
				total.L2MissRate = res.L2.MissRate()
			}
			rep.Rows = append(rep.Rows, row)
		}
		for _, cyc := range coreCycles {
			if cyc > total.Cycles {
				total.Cycles = cyc // makespan: the busiest core bounds the co-run
			}
		}
		if total.Cycles > 0 {
			total.IPC = round4(float64(total.Instructions) / float64(total.Cycles))
		}
		for _, st := range c.sched {
			total.Quanta += st.Quanta
			total.Switches += st.Switches
			total.Preemptions += st.Preemptions
			total.BlockDrops += st.BlockDrops
		}
		total.MeanSlowdown = round4(geomean(slowdowns))
		rep.Totals = append(rep.Totals, total)
	}

	// Per-mode summaries over the co-run tenant rows — the consolidation
	// ranking the paper's Sec. IV-D argument predicts.
	for _, mode := range cfg.Modes {
		sum := results.MulticoreModeSummary{Mode: mode.String()}
		var slowdowns []float64
		for _, row := range rep.Rows {
			if row.Mode != sum.Mode || row.Cell == "solo" || row.Error != "" {
				continue
			}
			sum.Rows++
			sum.DRCFlushes += row.DRCFlushes
			if row.Slowdown > 0 {
				slowdowns = append(slowdowns, row.Slowdown)
				if row.Slowdown > sum.MaxSlowdown {
					sum.MaxSlowdown = row.Slowdown
				}
			}
		}
		for _, total := range rep.Totals {
			if total.Mode == sum.Mode {
				sum.Switches += total.Switches
			}
		}
		sum.MeanSlowdown = round4(geomean(slowdowns))
		sum.MaxSlowdown = round4(sum.MaxSlowdown)
		rep.Summaries = append(rep.Summaries, sum)
	}

	for _, row := range rep.Rows {
		if row.Error != "" {
			rep.Partial = true
		}
	}
	return rep, nil
}

// fillRow copies one tenant result's counters into its wire row. IPC and
// the DRC miss rate round to 4 decimals so the table is byte-stable across
// architectures that differ in the last float bits of a division.
func fillRow(row *results.MulticoreRow, res cpu.Result) {
	row.Instructions = res.Stats.Instructions
	row.Cycles = res.Stats.Cycles
	if res.Stats.Cycles > 0 {
		row.IPC = round4(float64(res.Stats.Instructions) / float64(res.Stats.Cycles))
	}
	row.DRCFlushes = res.DRC.Flushes
	row.DRCMissRate = round4(res.DRC.MissRate())
}

// Summary returns the mode's aggregate, or nil when the mode was not run.
func (rep *Report) Summary(mode cpu.Mode) *results.MulticoreModeSummary {
	for i := range rep.Summaries {
		if rep.Summaries[i].Mode == mode.String() {
			return &rep.Summaries[i]
		}
	}
	return nil
}

// Envelope renders the report as the versioned wire document every surface
// emits (results schema v5, kind "multicore").
func (rep *Report) Envelope() results.Envelope {
	modes := make([]string, len(rep.Config.Modes))
	for i, m := range rep.Config.Modes {
		modes[i] = m.String()
	}
	cells := make([]string, len(rep.Config.Cells))
	for i, c := range rep.Config.Cells {
		cells[i] = c.String()
	}
	return results.NewMulticore(results.Multicore{
		Seed:      rep.Config.Seed,
		Scale:     rep.Config.Scale,
		Spread:    rep.Config.Spread,
		MaxInsts:  rep.Config.MaxInsts,
		Quantum:   rep.Config.Quantum,
		Workloads: rep.Config.Workloads,
		Modes:     modes,
		Cells:     cells,
		Rows:      rep.Rows,
		Summaries: rep.Summaries,
		Totals:    rep.Totals,
	})
}

// Table renders the report as the human-readable interference table
// clustersim and experiments print: one row per tenant (solo references
// included), then the per-(cell, mode) totals, then the per-mode summary —
// the headline comparison.
func (rep *Report) Table() *harness.Table {
	t := &harness.Table{
		ID:    "multicore",
		Title: "multi-tenant interference (co-run slowdown vs solo, per mode)",
		Columns: []string{"cell", "mode", "tenant", "core", "workload", "epoch",
			"insts", "cycles", "ipc", "solo-ipc", "slowdown", "drc-flush", "drc-miss"},
		Note: fmt.Sprintf("seed %d, quantum %d insts, per-tenant cap %d insts; slowdown = solo IPC / co-run IPC (geomean per mode)",
			rep.Config.Seed, rep.Config.Quantum, rep.Config.MaxInsts),
	}
	u := func(v uint64) string { return fmt.Sprintf("%d", v) }
	f := func(v float64) string { return fmt.Sprintf("%.4f", v) }
	opt := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return f(v)
	}
	for _, r := range rep.Rows {
		if r.Error != "" {
			t.Rows = append(t.Rows, []string{r.Cell, r.Mode, u(uint64(r.Tenant)), "", r.Workload,
				"", "error: " + r.Error})
			continue
		}
		t.Rows = append(t.Rows, []string{
			r.Cell, r.Mode, u(uint64(r.Tenant)), u(uint64(r.Core)), r.Workload,
			u(uint64(r.Epoch)), u(r.Instructions), u(r.Cycles), f(r.IPC),
			opt(r.SoloIPC), opt(r.Slowdown), u(r.DRCFlushes), f(r.DRCMissRate),
		})
	}
	for _, tt := range rep.Totals {
		t.Rows = append(t.Rows, []string{
			tt.Cell, tt.Mode, "(all)", "", "",
			"", u(tt.Instructions), u(tt.Cycles), f(tt.IPC),
			"", opt(tt.MeanSlowdown), u(tt.DRCFlushes),
			fmt.Sprintf("sw=%d pre=%d drop=%d", tt.Switches, tt.Preemptions, tt.BlockDrops),
		})
	}
	for _, s := range rep.Summaries {
		t.Rows = append(t.Rows, []string{
			"(co-run)", s.Mode, u(uint64(s.Rows)), "", "",
			"", "", "", "",
			"", f(s.MeanSlowdown), u(s.DRCFlushes),
			fmt.Sprintf("max=%.4f sw=%d", s.MaxSlowdown, s.Switches),
		})
	}
	return t
}

// notExecuted names why planned work never ran: the context's error when it
// was cancelled, a generic marker otherwise.
func notExecuted(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return errors.New("cell not executed")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// round4 keeps the wire floats at 4 decimals so reports are byte-stable.
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// geomean returns the geometric mean of positive values (0 when empty).
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}
