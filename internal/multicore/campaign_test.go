package multicore

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/results"
)

var update = flag.Bool("update", false, "rewrite golden files")

// canonicalReport runs the canonical campaign (the default Config every
// surface runs) exactly once per test binary and shares the report.
var canonicalReport = sync.OnceValues(func() (*Report, error) {
	return RunCampaign(context.Background(), harness.NewRunner(0), Config{}, nil)
})

// TestCampaignGolden pins the canonical interference campaign's results
// envelope byte for byte: same layouts, same schedule, same table, on every
// machine and Go version. Regenerate with -update after a deliberate change
// to the campaign (and bump the results schema if the wire shape changed).
func TestCampaignGolden(t *testing.T) {
	rep, err := canonicalReport()
	if err != nil {
		t.Fatal(err)
	}
	got, err := results.Marshal(rep.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "multicore.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("multicore envelope drifted from %s\n--- got ---\n%.2000s", path, got)
	}
}

// TestVCFRCoRunDegradationTracksBaseline is the consolidation acceptance
// criterion (Sec. IV-D): co-running under VCFR must not degrade IPC more
// than co-running under naive ILR — the scattered layout's location maps
// press extra state into the shared L2, while VCFR's read-only randomized
// space costs co-tenants nothing beyond what the baseline already pays.
func TestVCFRCoRunDegradationTracksBaseline(t *testing.T) {
	rep, err := canonicalReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("canonical campaign reported partial")
	}
	slow := make(map[string]float64)
	for _, s := range rep.Summaries {
		if s.Rows == 0 || s.MeanSlowdown == 0 {
			t.Fatalf("mode %s aggregated no co-run slowdowns: %+v", s.Mode, s)
		}
		slow[s.Mode] = s.MeanSlowdown
	}
	if slow["vcfr"] > slow["naive-ilr"] {
		t.Errorf("VCFR co-run slowdown %.4f exceeds naive ILR's %.4f; the consolidation claim fails",
			slow["vcfr"], slow["naive-ilr"])
	}
	// Interference must actually exist for the comparison to mean anything:
	// at least one mode's co-run geomean above parity.
	if slow["baseline"] < 1 || slow["naive-ilr"] <= 1 {
		t.Errorf("no measurable co-run interference: %+v", slow)
	}
	// Time-sharing cells must charge the paper's switch-in cost under the
	// randomizing modes: cold DRCs show up as flushes on the tenant rows.
	vcfr := rep.Summary(cpu.ModeVCFR)
	if vcfr == nil || vcfr.DRCFlushes == 0 || vcfr.Switches == 0 {
		t.Errorf("VCFR co-run summary charges no switch-in cost: %+v", vcfr)
	}
}

// TestCampaignDeterministicAcrossWorkers locks worker-count independence:
// the same seed must yield byte-identical interference tables whether the
// cells run serially or spread over eight workers.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{
		Workloads: []string{"bzip2", "sjeng"},
		Cells:     []Cell{{Cores: 2, Tenants: 3}, {Cores: 1, Tenants: 2}},
		MaxInsts:  8000,
		Quantum:   1000,
		Seed:      7,
	}
	run := func(workers int) []byte {
		t.Helper()
		rep, err := RunCampaign(context.Background(), harness.NewRunner(workers), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := results.Marshal(rep.Envelope())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("interference table depends on worker count:\n--- workers=1 ---\n%.1500s\n--- workers=8 ---\n%.1500s",
			serial, parallel)
	}
}

// TestCampaignRowPlan pins the row layout: one solo reference per (instance,
// mode) first, then one row per (cell, mode, tenant), with tenants cycling
// the workload pool across epochs.
func TestCampaignRowPlan(t *testing.T) {
	rep, err := canonicalReport()
	if err != nil {
		t.Fatal(err)
	}
	cfg := rep.Config
	maxTenants := 0
	for _, c := range cfg.Cells {
		if c.Tenants > maxTenants {
			maxTenants = c.Tenants
		}
	}
	wantSolo := maxTenants * len(cfg.Modes)
	var wantCo int
	for _, c := range cfg.Cells {
		wantCo += c.Tenants * len(cfg.Modes)
	}
	if len(rep.Rows) != wantSolo+wantCo {
		t.Fatalf("rows = %d, want %d solo + %d co-run", len(rep.Rows), wantSolo, wantCo)
	}
	for i, row := range rep.Rows[:wantSolo] {
		if row.Cell != "solo" {
			t.Fatalf("row %d: cell %q, want the solo block first", i, row.Cell)
		}
		inst := i / len(cfg.Modes)
		if want := cfg.Workloads[inst%len(cfg.Workloads)]; row.Workload != want || row.Epoch != inst/len(cfg.Workloads) {
			t.Errorf("solo row %d: workload %s epoch %d, want %s epoch %d",
				i, row.Workload, row.Epoch, want, inst/len(cfg.Workloads))
		}
	}
	for _, row := range rep.Rows[wantSolo:] {
		if row.Cell == "solo" {
			t.Fatalf("solo row after the co-run block")
		}
		if row.Error != "" {
			t.Errorf("co-run row %s/%s tenant %d errored: %s", row.Cell, row.Mode, row.Tenant, row.Error)
		}
	}
	if len(rep.Totals) != len(cfg.Cells)*len(cfg.Modes) {
		t.Errorf("totals = %d, want one per (cell, mode)", len(rep.Totals))
	}
	for _, tt := range rep.Totals {
		if tt.Instructions == 0 || tt.Cycles == 0 || tt.IPC == 0 {
			t.Errorf("empty total for %s/%s: %+v", tt.Cell, tt.Mode, tt)
		}
	}
}

// TestCampaignCancellation proves a cancelled campaign returns the partial
// report instead of an error: the full row plan comes back, unexecuted
// units are marked, and Partial is set.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunCampaign(ctx, harness.NewRunner(1), Config{
		Workloads: []string{"bzip2"},
		Cells:     []Cell{{Cores: 1, Tenants: 2}},
		MaxInsts:  5000,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Error("cancelled campaign not marked partial")
	}
	if want := 2*3 + 2*3; len(rep.Rows) != want {
		t.Errorf("cancelled campaign has %d rows, want the full plan of %d", len(rep.Rows), want)
	}
	for _, r := range rep.Rows {
		if r.Error == "" {
			t.Errorf("row %s/%s tenant %d executed under a cancelled context", r.Cell, r.Mode, r.Tenant)
		}
	}
	env := rep.Envelope()
	if !env.Multicore.Partial {
		t.Error("envelope of cancelled campaign not marked partial")
	}
}

// TestCampaignProgress checks the live progress feed: monotone unit counts
// ending at the plan total.
func TestCampaignProgress(t *testing.T) {
	var mu sync.Mutex
	var last harness.Progress
	var calls int
	rep, err := RunCampaign(context.Background(), harness.NewRunner(2), Config{
		Workloads: []string{"bzip2"},
		Modes:     []cpu.Mode{cpu.ModeVCFR},
		Cells:     []Cell{{Cores: 1, Tenants: 2}},
		MaxInsts:  5000,
	}, func(p harness.Progress) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if p.CellsDone > last.CellsDone {
			last = p
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("campaign partial")
	}
	if calls == 0 || last.CellsDone != last.CellsTotal || last.Instructions == 0 {
		t.Errorf("final progress %+v after %d calls, want all units done with nonzero instructions", last, calls)
	}
}

// TestParseCells pins the cell grammar.
func TestParseCells(t *testing.T) {
	got, err := ParseCells("2c4t, 1c2t")
	if err != nil || len(got) != 2 || got[0] != (Cell{2, 4}) || got[1] != (Cell{1, 2}) {
		t.Fatalf("ParseCells = %v, %v", got, err)
	}
	for _, bad := range []string{"", "2x4", "0c1t", "2c0t", "c4t", "2ct"} {
		if _, err := ParseCells(bad); err == nil {
			t.Errorf("ParseCells(%q) accepted", bad)
		}
	}
}
