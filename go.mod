module vcfr

go 1.22
