#!/bin/sh
# Smoke test for vcfrd: boot the service, hit every endpoint once, prove the
# simulate response is byte-identical to vcfrsim -stats-json, prove a
# timing-only repeat is served from the trace cache, exercise the unified
# /v1/jobs API and its deprecated aliases, prove a kind=multicore job's
# envelope is byte-identical to clustersim -json, boot a 1-coordinator +
# 2-worker fleet and prove a sharded fault campaign merges byte-identically
# to faultsim -json, and prove SIGTERM drains cleanly. Exits non-zero on the
# first failure.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'status=$?; for f in "$TMP"/*.pid; do [ -f "$f" ] && kill "$(cat "$f")" 2>/dev/null; done; rm -rf "$TMP"; exit $status' EXIT INT TERM

# start_vcfrd NAME [extra flags...] -> prints the bound address; the pid is
# written to $TMP/NAME.pid for teardown. Runs inside command substitution,
# so the daemon's stdout/stderr must not inherit the substitution pipe.
start_vcfrd() {
    name="$1"
    log="$TMP/$name.log"
    shift
    "$TMP/vcfrd" -addr 127.0.0.1:0 "$@" >/dev/null 2>"$log" &
    echo $! >"$TMP/$name.pid"
    # The daemon prints "vcfrd: listening on ADDR (...)" once the port is bound.
    addr=""
    for _ in $(seq 1 50); do
        addr="$(sed -n 's/^vcfrd: listening on \([^ ]*\) .*/\1/p' "$log")"
        [ -n "$addr" ] && break
        kill -0 "$(cat "$TMP/$name.pid")" 2>/dev/null || { echo "vcfrd died:" >&2; cat "$log" >&2; return 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "never saw the listening line" >&2; cat "$log" >&2; return 1; }
    echo "$addr"
}

# poll_job ADDR JOBID -> waits until the job is done (fails the script on a
# failed or stuck job).
poll_job() {
    state=""
    for _ in $(seq 1 600); do
        state="$(curl -fsS "http://$1/v1/jobs/$2" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)"
        [ "$state" = "done" ] && return 0
        [ "$state" = "failed" ] && { echo "job $2 failed:"; curl -fsS "http://$1/v1/jobs/$2"; return 1; }
        sleep 0.1
    done
    echo "job $2 stuck in '$state'"
    return 1
}

echo "== build"
"$GO" build -o "$TMP/vcfrd" ./cmd/vcfrd

echo "== start"
ADDR="$(start_vcfrd main)"
MAIN_PID="$(cat "$TMP/main.pid")"
echo "   $ADDR"

echo "== healthz"
[ "$(curl -fsS "http://$ADDR/healthz")" = "ok" ]

echo "== simulate is byte-identical to vcfrsim -stats-json"
REQ='{"workload": "h264ref", "mode": "all", "instructions": 50000}'
curl -fsS -d "$REQ" "http://$ADDR/v1/simulate" >"$TMP/service.json"
"$GO" run ./cmd/vcfrsim -workload h264ref -mode all -instructions 50000 -stats-json >"$TMP/cli.json"
cmp "$TMP/service.json" "$TMP/cli.json"

echo "== timing-only repeat replays from the trace cache"
curl -fsS -d '{"workload": "h264ref", "mode": "all", "instructions": 50000, "drc": 64}' \
    "http://$ADDR/v1/simulate" >/dev/null
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt"
HITS="$(sed -n 's/^vcfrd_trace_cache_hits_total //p' "$TMP/metrics.txt")"
[ "${HITS:-0}" -ge 1 ] || { echo "no trace cache hit (hits=$HITS)"; exit 1; }

echo "== unified submission via POST /v1/jobs"
JOB="$(curl -fsS -d '{"kind": "sweep", "workloads": ["lbm"], "instructions": 50000}' "http://$ADDR/v1/jobs" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || { echo "/v1/jobs returned no job id"; exit 1; }
poll_job "$ADDR" "$JOB"

echo "== deprecated alias still works and says so"
curl -fsS -D "$TMP/alias.hdr" -d '{"workloads": ["lbm"], "instructions": 50000}' \
    "http://$ADDR/v1/sweep" >"$TMP/alias.json"
grep -qi '^Deprecation:' "$TMP/alias.hdr" || { echo "alias without Deprecation header"; exit 1; }
ALIAS_JOB="$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$TMP/alias.json")"
poll_job "$ADDR" "$ALIAS_JOB"
curl -fsS "http://$ADDR/v1/jobs/$JOB/result" >"$TMP/unified.json"
curl -fsS "http://$ADDR/v1/jobs/$ALIAS_JOB/result" >"$TMP/aliased.json"
cmp "$TMP/unified.json" "$TMP/aliased.json"

echo "== job listing paginates"
curl -fsS "http://$ADDR/v1/jobs?state=done&limit=1" | grep -q '"jobs"'

echo "== workloads catalog"
curl -fsS "http://$ADDR/v1/workloads" | grep -q '"name"'

echo "== multicore campaign via POST /v1/jobs is byte-identical to clustersim -json"
MREQ='{"kind": "multicore", "workloads": ["bzip2", "sjeng"], "mode": "vcfr", "cells": ["1c2t"], "quantum": 2000, "instructions": 10000}'
MJOB="$(curl -fsS -d "$MREQ" "http://$ADDR/v1/jobs" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$MJOB" ] || { echo "/v1/jobs returned no multicore job id"; exit 1; }
poll_job "$ADDR" "$MJOB"
curl -fsS "http://$ADDR/v1/jobs/$MJOB/result" >"$TMP/multicore.json"
"$GO" run ./cmd/clustersim -workloads bzip2,sjeng -mode vcfr -cells 1c2t \
    -quantum 2000 -instructions 10000 -json >"$TMP/multicore-cli.json"
cmp "$TMP/multicore.json" "$TMP/multicore-cli.json"

echo "== fleet: 2 workers + 1 coordinator, sharded campaign merges byte-identically"
W1="$(start_vcfrd worker1)"
W2="$(start_vcfrd worker2)"
CO="$(start_vcfrd coord -coordinator -backends "http://$W1,http://$W2")"
CO_PID="$(cat "$TMP/coord.pid")"
echo "   workers $W1 $W2, coordinator $CO"
FREQ='{"kind": "faults", "workloads": ["bzip2", "sjeng"], "mode": "vcfr", "injections": 20, "instructions": 10000}'
FJOB="$(curl -fsS -d "$FREQ" "http://$CO/v1/jobs" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$FJOB" ] || { echo "coordinator returned no job id"; exit 1; }
poll_job "$CO" "$FJOB"
curl -fsS "http://$CO/v1/jobs/$FJOB/result" >"$TMP/fleet.json"
"$GO" run ./cmd/faultsim -workloads bzip2,sjeng -mode vcfr -injections 20 \
    -instructions 10000 -json >"$TMP/fleet-cli.json"
cmp "$TMP/fleet.json" "$TMP/fleet-cli.json"

echo "== SIGTERM drains"
# The daemons were started inside command substitutions, so they are not
# children of this shell; poll for exit instead of wait(1).
kill -TERM "$MAIN_PID" "$CO_PID"
for p in "$MAIN_PID" "$CO_PID"; do
    for _ in $(seq 1 100); do
        kill -0 "$p" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$p" 2>/dev/null && { echo "pid $p did not exit on SIGTERM"; exit 1; }
done
grep -q "vcfrd: drained, exiting" "$TMP/main.log" || { echo "no clean drain:"; cat "$TMP/main.log"; exit 1; }
grep -q "vcfrd: drained, exiting" "$TMP/coord.log" || { echo "coordinator did not drain:"; cat "$TMP/coord.log"; exit 1; }

echo "PASS"
