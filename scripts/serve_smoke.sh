#!/bin/sh
# Smoke test for vcfrd: boot the service, hit every endpoint once, prove the
# simulate response is byte-identical to vcfrsim -stats-json, prove a
# timing-only repeat is served from the trace cache, and prove SIGTERM
# drains cleanly. Exits non-zero on the first failure.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'status=$?; [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null; rm -rf "$TMP"; exit $status' EXIT INT TERM

echo "== build"
"$GO" build -o "$TMP/vcfrd" ./cmd/vcfrd

echo "== start"
"$TMP/vcfrd" -addr 127.0.0.1:0 2>"$TMP/vcfrd.log" &
PID=$!

# The daemon prints "vcfrd: listening on ADDR (...)" once the port is bound.
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^vcfrd: listening on \([^ ]*\) .*/\1/p' "$TMP/vcfrd.log")"
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "vcfrd died:"; cat "$TMP/vcfrd.log"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "never saw the listening line"; cat "$TMP/vcfrd.log"; exit 1; }
echo "   $ADDR"

echo "== healthz"
[ "$(curl -fsS "http://$ADDR/healthz")" = "ok" ]

echo "== simulate is byte-identical to vcfrsim -stats-json"
REQ='{"workload": "h264ref", "mode": "all", "instructions": 50000}'
curl -fsS -d "$REQ" "http://$ADDR/v1/simulate" >"$TMP/service.json"
"$GO" run ./cmd/vcfrsim -workload h264ref -mode all -instructions 50000 -stats-json >"$TMP/cli.json"
cmp "$TMP/service.json" "$TMP/cli.json"

echo "== timing-only repeat replays from the trace cache"
curl -fsS -d '{"workload": "h264ref", "mode": "all", "instructions": 50000, "drc": 64}' \
    "http://$ADDR/v1/simulate" >/dev/null
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt"
HITS="$(sed -n 's/^vcfrd_trace_cache_hits_total //p' "$TMP/metrics.txt")"
[ "${HITS:-0}" -ge 1 ] || { echo "no trace cache hit (hits=$HITS)"; exit 1; }

echo "== async sweep lifecycle"
JOB="$(curl -fsS -d '{"workloads": ["lbm"], "instructions": 50000}' "http://$ADDR/v1/sweep" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || { echo "sweep returned no job id"; exit 1; }
STATE=""
for _ in $(seq 1 100); do
    STATE="$(curl -fsS "http://$ADDR/v1/jobs/$JOB" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)"
    [ "$STATE" = "done" ] && break
    [ "$STATE" = "failed" ] && { echo "sweep job failed"; exit 1; }
    sleep 0.1
done
[ "$STATE" = "done" ] || { echo "sweep job stuck in '$STATE'"; exit 1; }

echo "== workloads catalog"
curl -fsS "http://$ADDR/v1/workloads" | grep -q '"name"'

echo "== SIGTERM drains"
kill -TERM "$PID"
wait "$PID"
PID=""
grep -q "vcfrd: drained, exiting" "$TMP/vcfrd.log" || { echo "no clean drain:"; cat "$TMP/vcfrd.log"; exit 1; }

echo "PASS"
