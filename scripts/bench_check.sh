#!/bin/sh
# Regression guard for the simulate hot path: run the fig13+fig14 DRC-sweep
# acceptance benchmark fresh and compare its ns-per-simulated-instruction
# against the budget pinned in BENCH_pipeline.json.
#
#   - A variant more than BENCH_TOLERANCE percent (default 15) slower than
#     its pinned budget fails the script (and therefore CI).
#   - A variant meaningfully faster than its budget (beyond the noise
#     margin) rewrites BENCH_pipeline.json in place, so improvements
#     ratchet the budget down instead of leaving slack for regressions to
#     hide in. Commit the updated file with the change that earned it.
#
# Usage: scripts/bench_check.sh [baseline.json]
set -eu

GO="${GO:-go}"
BASE="${1:-BENCH_pipeline.json}"
TOL="${BENCH_TOLERANCE:-15}" # percent regression budget
IMPROVE="${BENCH_IMPROVE_MARGIN:-3}" # percent faster before re-pinning
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

if [ ! -f "$BASE" ]; then
    echo "bench_check: no baseline $BASE — record one with scripts/bench_pipeline.sh" >&2
    exit 1
fi

echo "== bench_check (tolerance ${TOL}%, baseline $BASE)"
"$GO" test ./internal/harness -run '^$' -bench 'BenchmarkDRCSweep' \
    -benchtime 3x -count "$COUNT" | tee "$TMP"

awk -v base="$BASE" -v tol="$TOL" -v improve="$IMPROVE" '
# Fresh numbers: average ns/op and ns/instr per variant over -count reps.
FILENAME != base && /^BenchmarkDRCSweep\// {
    split($1, parts, "/"); sub(/-[0-9]+$/, "", parts[2])
    v = parts[2]
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")    { nsop[v] += $i; n[v]++ }
        if ($(i+1) == "ns/instr") { nsinstr[v] += $i }
    }
}
# Pinned budgets out of the baseline JSON.
FILENAME == base && /"execute"/ { pin["execute"] = pinned($0) }
FILENAME == base && /"replay"/  { pin["replay"]  = pinned($0) }
function pinned(line,    s) {
    s = line
    sub(/.*"ns_per_instr": */, "", s); sub(/[^0-9.].*/, "", s)
    return s + 0
}
END {
    if (!(pin["execute"] > 0) || !(pin["replay"] > 0)) {
        print "bench_check: could not parse pinned ns_per_instr from " base > "/dev/stderr"
        exit 1
    }
    status = 0
    improved = 0
    for (v in pin) {
        if (!n[v]) {
            printf "bench_check: no fresh output for variant %s\n", v > "/dev/stderr"
            exit 1
        }
        fresh[v] = nsinstr[v] / n[v]
        budget = pin[v] * (1 + tol / 100)
        delta = (fresh[v] / pin[v] - 1) * 100
        printf "== %-8s fresh %8.4f ns/instr  pinned %8.4f  (%+.1f%%, budget %.4f)\n",
            v, fresh[v], pin[v], delta, budget
        if (fresh[v] > budget) {
            printf "bench_check: FAIL: %s ns/instr %.4f exceeds budget %.4f (pinned %.4f +%d%%)\n",
                v, fresh[v], budget, pin[v], tol > "/dev/stderr"
            status = 1
        } else if (fresh[v] < pin[v] * (1 - improve / 100)) {
            improved = 1
        }
    }
    if (status == 0 && improved) {
        printf "{\n" > base
        printf "  \"benchmark\": \"BenchmarkDRCSweep\",\n" >> base
        printf "  \"config\": \"fig13+fig14 DRC sweep, workloads h264ref+lbm, 120000 instructions, benchtime 3x\",\n" >> base
        printf "  \"count\": %d,\n", n["execute"] >> base
        printf "  \"execute\": {\"ns_per_op\": %.0f, \"ns_per_instr\": %.4f},\n",
            nsop["execute"] / n["execute"], fresh["execute"] >> base
        printf "  \"replay\": {\"ns_per_op\": %.0f, \"ns_per_instr\": %.4f}\n",
            nsop["replay"] / n["replay"], fresh["replay"] >> base
        printf "}\n" >> base
        printf "== improvement: re-pinned %s\n", base
    }
    exit status
}
' "$BASE" "$TMP"

echo "== bench_check OK"
