#!/bin/sh
# Run the fault-injection campaign benchmark and archive its numbers —
# ns/op and injections per second — as JSON in BENCH_fault.json. The
# injections/s figure bounds how large a dependability study the
# simulator can host; refactors of the injector or campaign runner are
# checked against a previously recorded file.
#
# Usage: scripts/bench_fault.sh [output.json]
set -eu

GO="${GO:-go}"
OUT="${1:-BENCH_fault.json}"
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

echo "== bench (benchtime 3x, count $COUNT)"
"$GO" test ./internal/fault -run '^$' -bench 'BenchmarkCampaign' \
    -benchtime 3x -count "$COUNT" | tee "$TMP"

# Benchmark lines look like:
#   BenchmarkCampaign-8  3  205000000 ns/op  878 injections/s
# Average ns/op and injections/s over the -count repetitions.
awk -v out="$OUT" '
/^BenchmarkCampaign/ {
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")        { nsop += $i; n++ }
        if ($(i+1) == "injections/s") { ips += $i }
    }
}
END {
    if (!n) {
        print "bench_fault: missing benchmark output" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkCampaign\",\n" >> out
    printf "  \"config\": \"bzip2, vcfr, 60 injections, 10000-instruction references, benchtime 3x\",\n" >> out
    printf "  \"count\": %d,\n", n >> out
    printf "  \"ns_per_op\": %.0f,\n", nsop / n >> out
    printf "  \"injections_per_sec\": %.1f\n", ips / n >> out
    printf "}\n" >> out
}
' "$TMP"

echo "== wrote $OUT"
cat "$OUT"
