#!/bin/sh
# Run the scheduled-cluster benchmark and archive its numbers — ns/op and
# ns per simulated instruction per mode — as JSON in BENCH_multicore.json.
# The multi-tenant path must stay close to the single-core hot loop: the
# script fails if the vcfr cluster's ns/instr exceeds BENCH_MAX_RATIO
# (default 1.5) times the single-core execute budget pinned in
# BENCH_pipeline.json. That bound is the consolidation story's simulator-
# side acceptance criterion: scheduling, switch costs, and the shared L2
# must not wreck throughput.
#
# Usage: scripts/bench_multicore.sh [output.json]
set -eu

GO="${GO:-go}"
OUT="${1:-BENCH_multicore.json}"
PIPE="${BENCH_PIPELINE:-BENCH_pipeline.json}"
RATIO="${BENCH_MAX_RATIO:-1.5}"
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

if [ ! -f "$PIPE" ]; then
    echo "bench_multicore: no pipeline baseline $PIPE — record one with scripts/bench_pipeline.sh" >&2
    exit 1
fi

echo "== bench (benchtime 3x, count $COUNT)"
"$GO" test ./internal/cpu -run '^$' -bench 'BenchmarkCluster' \
    -benchtime 3x -count "$COUNT" | tee "$TMP"

# Benchmark lines look like:
#   BenchmarkCluster/vcfr-8  3  10323653 ns/op  43.01 ns/instr
# Average per mode over the -count repetitions, then hold vcfr against the
# pinned single-core execute budget.
awk -v out="$OUT" -v pipe="$PIPE" -v ratio="$RATIO" '
FILENAME != pipe && /^BenchmarkCluster\// {
    split($1, parts, "/"); sub(/-[0-9]+$/, "", parts[2])
    v = parts[2]
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")    { nsop[v] += $i; n[v]++ }
        if ($(i+1) == "ns/instr") { nsinstr[v] += $i }
    }
}
FILENAME == pipe && /"execute"/ {
    s = $0
    sub(/.*"ns_per_instr": */, "", s); sub(/[^0-9.].*/, "", s)
    execute = s + 0
}
END {
    if (!n["baseline"] || !n["vcfr"]) {
        print "bench_multicore: missing benchmark output" > "/dev/stderr"
        exit 1
    }
    if (!(execute > 0)) {
        print "bench_multicore: could not parse pinned execute ns_per_instr from " pipe > "/dev/stderr"
        exit 1
    }
    for (v in n) fresh[v] = nsinstr[v] / n[v]
    budget = execute * ratio
    printf "== vcfr cluster %.4f ns/instr  single-core execute %.4f  (%.2fx, budget %.4f)\n",
        fresh["vcfr"], execute, fresh["vcfr"] / execute, budget
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkCluster\",\n" >> out
    printf "  \"config\": \"h264ref x4 tenants on 2 cores, 60000-instruction cap, benchtime 3x\",\n" >> out
    printf "  \"count\": %d,\n", n["vcfr"] >> out
    printf "  \"baseline\": {\"ns_per_op\": %.0f, \"ns_per_instr\": %.4f},\n",
        nsop["baseline"] / n["baseline"], fresh["baseline"] >> out
    printf "  \"vcfr\": {\"ns_per_op\": %.0f, \"ns_per_instr\": %.4f},\n",
        nsop["vcfr"] / n["vcfr"], fresh["vcfr"] >> out
    printf "  \"vcfr_vs_pipeline_execute\": %.4f\n", fresh["vcfr"] / execute >> out
    printf "}\n" >> out
    if (fresh["vcfr"] > budget) {
        printf "bench_multicore: FAIL: vcfr cluster ns/instr %.4f exceeds %.1fx the pinned single-core execute budget %.4f\n",
            fresh["vcfr"], ratio, execute > "/dev/stderr"
        exit 1
    }
}
' "$PIPE" "$TMP"

echo "== wrote $OUT"
cat "$OUT"
