#!/bin/sh
# Run the real-binary front-end benchmarks and archive their numbers —
# lift throughput (RV64 instructions lifted per second) and simulator
# speed on lifted text (ns per simulated instruction) — as JSON in
# BENCH_realbin.json. Non-gating: the file is a recorded reference for
# refactors of the parser, decoder, or lifter, not a CI budget.
#
# Usage: scripts/bench_realbin.sh [output.json]
set -eu

GO="${GO:-go}"
OUT="${1:-BENCH_realbin.json}"
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

echo "== bench (benchtime 50x, count $COUNT)"
"$GO" test ./internal/realbin -run '^$' \
    -bench 'BenchmarkLift$|BenchmarkLiftedSimulate$' \
    -benchtime 50x -count "$COUNT" | tee "$TMP"

# Benchmark lines look like (the -N procs suffix is absent on 1-CPU hosts):
#   BenchmarkLift-8             50   33000 ns/op   760000 instrs/s
#   BenchmarkLiftedSimulate-8   50  270000 ns/op   61.2 ns/instr
awk -v out="$OUT" '
/^BenchmarkLift[-\t ]/ {
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")    { liftns += $i; ln++ }
        if ($(i+1) == "instrs/s") { lifted += $i }
    }
}
/^BenchmarkLiftedSimulate[-\t ]/ {
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")    { simns += $i; sn++ }
        if ($(i+1) == "ns/instr") { nsinstr += $i }
    }
}
END {
    if (!ln || !sn) {
        print "bench_realbin: missing benchmark output" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkLift + BenchmarkLiftedSimulate\",\n" >> out
    printf "  \"config\": \"crc32.elf fixture, full lift and full vcfr-mode run, benchtime 50x\",\n" >> out
    printf "  \"count\": %d,\n", ln >> out
    printf "  \"lift\": {\"ns_per_op\": %.0f, \"instrs_per_sec\": %.0f},\n",
        liftns / ln, lifted / ln >> out
    printf "  \"simulate\": {\"ns_per_op\": %.0f, \"ns_per_instr\": %.4f}\n",
        simns / sn, nsinstr / sn >> out
    printf "}\n" >> out
}
' "$TMP"

echo "== wrote $OUT"
cat "$OUT"
