#!/bin/sh
# Service-level load benchmark: fire a mixed stream of run/sweep/faults/
# attacks jobs (cmd/vcfrload) at two topologies — one single-process vcfrd,
# then a 1-coordinator + 2-worker fleet — and archive throughput and
# latency percentiles (p50/p90/p99/p999) for both as BENCH_service.json.
# The comparison shows what coordinator sharding buys (and costs) at the
# service level, independent of simulator speed.
#
# Usage: scripts/bench_service.sh [output.json]
# Env:   BENCH_REQUESTS (default 400), BENCH_CONCURRENCY (default 16)
set -eu

GO="${GO:-go}"
OUT="${1:-BENCH_service.json}"
N="${BENCH_REQUESTS:-400}"
C="${BENCH_CONCURRENCY:-16}"
TMP="$(mktemp -d)"
trap 'status=$?; for f in "$TMP"/*.pid; do [ -f "$f" ] && kill "$(cat "$f")" 2>/dev/null; done; rm -rf "$TMP"; exit $status' EXIT INT TERM

echo "== build"
"$GO" build -o "$TMP/vcfrd" ./cmd/vcfrd
"$GO" build -o "$TMP/vcfrload" ./cmd/vcfrload

# start_vcfrd NAME [extra flags...] -> prints the bound address; pid lands
# in $TMP/NAME.pid. Stdout must not inherit the substitution pipe.
start_vcfrd() {
    name="$1"
    log="$TMP/$name.log"
    shift
    "$TMP/vcfrd" -addr 127.0.0.1:0 -queue 256 "$@" >/dev/null 2>"$log" &
    echo $! >"$TMP/$name.pid"
    addr=""
    for _ in $(seq 1 50); do
        addr="$(sed -n 's/^vcfrd: listening on \([^ ]*\) .*/\1/p' "$log")"
        [ -n "$addr" ] && break
        kill -0 "$(cat "$TMP/$name.pid")" 2>/dev/null || { echo "vcfrd died:" >&2; cat "$log" >&2; return 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "never saw the listening line" >&2; cat "$log" >&2; return 1; }
    echo "$addr"
}

stop_vcfrd() {
    for name in "$@"; do
        [ -f "$TMP/$name.pid" ] || continue
        kill -TERM "$(cat "$TMP/$name.pid")" 2>/dev/null || true
    done
    for name in "$@"; do
        [ -f "$TMP/$name.pid" ] || continue
        p="$(cat "$TMP/$name.pid")"
        for _ in $(seq 1 100); do
            kill -0 "$p" 2>/dev/null || break
            sleep 0.1
        done
        rm -f "$TMP/$name.pid"
    done
}

echo "== topology A: single vcfrd, $N jobs x $C in flight"
A="$(start_vcfrd single)"
"$TMP/vcfrload" -addr "http://$A" -n "$N" -c "$C" >"$TMP/single.json"
stop_vcfrd single

echo "== topology B: 1 coordinator + 2 workers, $N jobs x $C in flight"
W1="$(start_vcfrd worker1)"
W2="$(start_vcfrd worker2)"
CO="$(start_vcfrd coord -coordinator -backends "http://$W1,http://$W2")"
"$TMP/vcfrload" -addr "http://$CO" -n "$N" -c "$C" >"$TMP/fleet.json"
stop_vcfrd coord worker1 worker2

# Assemble the archive: both vcfrload reports under one roof.
{
    printf '{\n'
    printf '  "benchmark": "vcfrload mixed run/sweep/faults/attacks",\n'
    printf '  "requests": %s,\n' "$N"
    printf '  "concurrency": %s,\n' "$C"
    printf '  "single_process": '
    sed 's/^/  /' "$TMP/single.json" | sed '1s/^  //'
    printf ',\n'
    printf '  "fleet_1coord_2workers": '
    sed 's/^/  /' "$TMP/fleet.json" | sed '1s/^  //'
    printf '}\n'
} >"$OUT"

echo "== wrote $OUT"
cat "$OUT"
