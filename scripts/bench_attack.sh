#!/bin/sh
# Run the attack-evaluation benchmarks and archive their numbers — chains
# evaluated per second (the ROP builder compiling payload templates against
# a full-knowledge pool) and hijacked fires per second (the full stack-smash
# round trip) — as JSON in BENCH_attack.json. These bound how large an
# adversary-in-the-loop study the simulator can host; refactors of the chain
# builder, the oracle, or the fire path are checked against a previously
# recorded file.
#
# Usage: scripts/bench_attack.sh [output.json]
set -eu

GO="${GO:-go}"
OUT="${1:-BENCH_attack.json}"
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

echo "== bench (benchtime 100x, count $COUNT)"
"$GO" test ./internal/attack -run '^$' -bench 'BenchmarkChainBuild|BenchmarkFire' \
    -benchtime 100x -count "$COUNT" | tee "$TMP"

# Benchmark lines look like:
#   BenchmarkChainBuild-8  100  41000 ns/op  73000 chains/s
#   BenchmarkFire-8        100  900000 ns/op  1100 fires/s
# Average each benchmark's custom metric over the -count repetitions.
awk -v out="$OUT" '
/^BenchmarkChainBuild/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "chains/s") { chains += $i; cn++ }
}
/^BenchmarkFire/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "fires/s") { fires += $i; fn++ }
}
END {
    if (!cn || !fn) {
        print "bench_attack: missing benchmark output" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmarks\": \"BenchmarkChainBuild, BenchmarkFire\",\n" >> out
    printf "  \"config\": \"sjeng, baseline full-knowledge pool, benchtime 100x\",\n" >> out
    printf "  \"count\": %d,\n", cn >> out
    printf "  \"chains_per_sec\": %.1f,\n", chains / cn >> out
    printf "  \"fires_per_sec\": %.1f\n", fires / fn >> out
    printf "}\n" >> out
}
' "$TMP"

echo "== wrote $OUT"
cat "$OUT"
