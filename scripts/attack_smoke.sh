#!/bin/sh
# Smoke test for the adversary-in-the-loop surface: boot vcfrd, run a small
# attack campaign through POST /v1/attacks, poll the job to completion, and
# prove the stored envelope at /v1/jobs/{id}/result is byte-identical to
# `attacksim -json` with the same parameters. Also checks the attack.*
# counters reached /metrics and that SIGTERM still drains cleanly.
# Exits non-zero on the first failure.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'status=$?; [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null; rm -rf "$TMP"; exit $status' EXIT INT TERM

echo "== build"
"$GO" build -o "$TMP/vcfrd" ./cmd/vcfrd

echo "== start"
"$TMP/vcfrd" -addr 127.0.0.1:0 2>"$TMP/vcfrd.log" &
PID=$!

# The daemon prints "vcfrd: listening on ADDR (...)" once the port is bound.
ADDR=""
for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^vcfrd: listening on \([^ ]*\) .*/\1/p' "$TMP/vcfrd.log")"
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "vcfrd died:"; cat "$TMP/vcfrd.log"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "never saw the listening line"; cat "$TMP/vcfrd.log"; exit 1; }
echo "   $ADDR"

echo "== submit campaign"
REQ='{"workloads": ["bzip2"], "mode": "all"}'
JOB="$(curl -fsS -d "$REQ" "http://$ADDR/v1/attacks" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || { echo "attacks returned no job id"; exit 1; }
echo "   $JOB"

echo "== poll to completion"
STATE=""
for _ in $(seq 1 600); do
    STATE="$(curl -fsS "http://$ADDR/v1/jobs/$JOB" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)"
    [ "$STATE" = "done" ] && break
    [ "$STATE" = "failed" ] && { echo "attack job failed"; curl -fsS "http://$ADDR/v1/jobs/$JOB"; exit 1; }
    sleep 0.1
done
[ "$STATE" = "done" ] || { echo "attack job stuck in '$STATE'"; exit 1; }

echo "== result is byte-identical to attacksim -json"
curl -fsS "http://$ADDR/v1/jobs/$JOB/result" >"$TMP/service.json"
"$GO" run ./cmd/attacksim -workloads bzip2 -mode all -json >"$TMP/cli.json"
cmp "$TMP/service.json" "$TMP/cli.json"

echo "== attack counters reached /metrics"
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt"
CAMPAIGNS="$(sed -n 's/^vcfrd_attack_campaigns_total //p' "$TMP/metrics.txt")"
[ "${CAMPAIGNS:-0}" -ge 1 ] || { echo "no campaign counted (campaigns=$CAMPAIGNS)"; exit 1; }
# The campaign's own totals are the reference: the service merges each
# finished campaign's Stats into the registry, so the counter must match
# the "leaks" figure in the envelope's totals block.
WANT="$(sed -n '/"totals"/,/}/{s/.*"leaks": *\([0-9]*\).*/\1/p;}' "$TMP/cli.json" | head -1)"
LEAKS="$(sed -n 's/^vcfrd_attack_leaks_total //p' "$TMP/metrics.txt")"
[ -n "$WANT" ] || { echo "could not find campaign totals in cli.json"; exit 1; }
[ "${LEAKS:-0}" = "$WANT" ] || { echo "leaks counter $LEAKS != campaign total $WANT"; exit 1; }

echo "== SIGTERM drains"
kill -TERM "$PID"
wait "$PID"
PID=""
grep -q "vcfrd: drained, exiting" "$TMP/vcfrd.log" || { echo "no clean drain:"; cat "$TMP/vcfrd.log"; exit 1; }

echo "PASS"
