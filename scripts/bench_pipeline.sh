#!/bin/sh
# Run the pipeline's acceptance benchmark (the fig13+fig14 DRC-size sweep,
# execute-driven and trace-replayed) and archive its numbers — ns/op and
# ns per simulated instruction — as JSON in BENCH_pipeline.json. Refactors
# of the simulate hot path are checked against a previously recorded file:
# the ns/instr of the execute variant must stay within a few percent.
#
# Usage: scripts/bench_pipeline.sh [output.json]
set -eu

GO="${GO:-go}"
OUT="${1:-BENCH_pipeline.json}"
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

echo "== bench (benchtime 3x, count $COUNT)"
"$GO" test ./internal/harness -run '^$' -bench 'BenchmarkDRCSweep' \
    -benchtime 3x -count "$COUNT" | tee "$TMP"

# Benchmark lines look like:
#   BenchmarkDRCSweep/execute-8  3  172000000 ns/op  1.43 ns/instr
# Average each variant's ns/op and ns/instr over the -count repetitions.
awk -v out="$OUT" '
/^BenchmarkDRCSweep\// {
    split($1, parts, "/"); sub(/-[0-9]+$/, "", parts[2])
    v = parts[2]
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")    { nsop[v] += $i;    n[v]++ }
        if ($(i+1) == "ns/instr") { nsinstr[v] += $i }
    }
}
END {
    if (!n["execute"] || !n["replay"]) {
        print "bench_pipeline: missing benchmark output" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkDRCSweep\",\n" >> out
    printf "  \"config\": \"fig13+fig14 DRC sweep, workloads h264ref+lbm, 120000 instructions, benchtime 3x\",\n" >> out
    printf "  \"count\": %d,\n", n["execute"] >> out
    printf "  \"execute\": {\"ns_per_op\": %.0f, \"ns_per_instr\": %.4f},\n",
        nsop["execute"] / n["execute"], nsinstr["execute"] / n["execute"] >> out
    printf "  \"replay\": {\"ns_per_op\": %.0f, \"ns_per_instr\": %.4f}\n",
        nsop["replay"] / n["replay"], nsinstr["replay"] / n["replay"] >> out
    printf "}\n" >> out
}
' "$TMP"

echo "== wrote $OUT"
cat "$OUT"
