// Command vxtrace records, inspects, and replays execution traces
// (see internal/trace and docs/ARCHITECTURE.md for the file format).
//
// Usage:
//
//	vxtrace record -workload h264ref -mode vcfr -instructions 120000 -o h264.vxt
//	vxtrace info h264.vxt
//	vxtrace replay h264.vxt
//	vxtrace replay -drc 64 -width 2 h264.vxt
//
// record captures one execute-driven run into a trace file. replay rebuilds
// the same (workload, layout) pair from the trace's metadata, verifies the
// image hash, and drives the cycle-level pipeline from the recorded stream —
// optionally under a different timing configuration, which is the point:
// one recording answers any number of timing questions.
package main

import (
	"flag"
	"fmt"
	"os"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vxtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: vxtrace record|info|replay [flags] [file]")
	}
	switch args[0] {
	case "record":
		return record(args[1:])
	case "info":
		return info(args[1:])
	case "replay":
		return replay(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want record, info, or replay)", args[0])
	}
}

func parseMode(s string) (cpu.Mode, error) {
	switch s {
	case "baseline":
		return cpu.ModeBaseline, nil
	case "naive":
		return cpu.ModeNaiveILR, nil
	case "vcfr":
		return cpu.ModeVCFR, nil
	default:
		return 0, fmt.Errorf("unknown -mode %q (want baseline, naive, or vcfr)", s)
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("vxtrace record", flag.ExitOnError)
	var (
		workload = fs.String("workload", "", "built-in workload name")
		modeF    = fs.String("mode", "vcfr", "baseline | naive | vcfr")
		seed     = fs.Int64("seed", 42, "randomization seed")
		spread   = fs.Int("spread", 0, "ILR scatter factor (0 = harness default)")
		scale    = fs.Int("scale", 1, "workload scale")
		maxInsts = fs.Uint64("instructions", 0, "instruction cap (0 = to completion)")
		out      = fs.String("o", "", "output trace file (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workload == "" || *out == "" {
		return fmt.Errorf("record needs -workload and -o")
	}
	mode, err := parseMode(*modeF)
	if err != nil {
		return err
	}
	cfg := harness.Config{Scale: *scale, Seed: *seed, Spread: *spread}
	app, err := harness.Prepare(*workload, cfg)
	if err != nil {
		return err
	}
	p, _, err := app.Pipeline(mode, nil)
	if err != nil {
		return err
	}
	key := harness.TraceKey(app, mode, *maxInsts)
	tr, res, err := trace.Capture(p, *maxInsts, trace.Meta{
		Workload:   app.W.Name,
		Mode:       mode,
		LayoutSeed: app.R.Opts.Seed,
		Spread:     app.R.Opts.Spread,
		Scale:      *scale,
		MaxInsts:   *maxInsts,
		ImageHash:  key.ImageHash,
	})
	if err != nil {
		return err
	}
	if err := tr.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("recorded %s under %s: %d instructions, %d cycles (IPC %.3f)\n",
		app.W.Name, mode, res.Stats.Instructions, res.Stats.Cycles, res.Stats.IPC())
	fmt.Printf("wrote %s: %d records, %d unique instructions\n", *out, tr.Len(), len(tr.Insts))
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("vxtrace info", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit a versioned results.Envelope instead of the text report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: vxtrace info [-json] FILE")
	}
	path := fs.Arg(0)
	tr, err := trace.LoadFile(path)
	if err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	m := tr.Meta
	if *jsonOut {
		return results.Write(os.Stdout, results.NewTrace(results.Trace{
			Workload:     m.Workload,
			Mode:         m.Mode.String(),
			LayoutSeed:   m.LayoutSeed,
			Spread:       m.Spread,
			Scale:        m.Scale,
			ImageHash:    fmt.Sprintf("%#016x", m.ImageHash),
			MaxInsts:     m.MaxInsts,
			Records:      tr.Len(),
			UniqueInsts:  len(tr.Insts),
			Halted:       tr.Halted,
			ExitCode:     tr.ExitCode,
			OutputBytes:  len(tr.Out),
			EncodedBytes: st.Size(),
		}))
	}
	fmt.Printf("workload      %s\n", m.Workload)
	fmt.Printf("mode          %s\n", m.Mode)
	fmt.Printf("layout        seed=%d spread=%d scale=%d\n", m.LayoutSeed, m.Spread, m.Scale)
	fmt.Printf("image hash    %#016x\n", m.ImageHash)
	fmt.Printf("capture cap   %d instructions (0 = to completion)\n", m.MaxInsts)
	fmt.Printf("records       %d (%d unique instructions)\n", tr.Len(), len(tr.Insts))
	fmt.Printf("halted        %v (exit code %d, %d output bytes)\n", tr.Halted, tr.ExitCode, len(tr.Out))
	fmt.Printf("encoded size  %d bytes (%.2f bytes/record)\n", st.Size(), float64(st.Size())/float64(max(tr.Len(), 1)))
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("vxtrace replay", flag.ExitOnError)
	var (
		drc      = fs.Int("drc", 0, "override DRC entries (0 = default)")
		width    = fs.Int("width", 0, "override issue width (0 = default)")
		ctxEvery = fs.Uint64("ctxswitch", 0, "flush process-private state every N instructions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: vxtrace replay [flags] FILE")
	}
	tr, err := trace.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	m := tr.Meta

	// Rebuild the captured (workload, layout) pair from the trace metadata
	// and prove it is the same image before replaying into it.
	cfg := harness.Config{Scale: m.Scale, Seed: m.LayoutSeed, Spread: m.Spread}
	app, err := harness.Prepare(m.Workload, cfg)
	if err != nil {
		return fmt.Errorf("rebuilding %s: %w", m.Workload, err)
	}
	if key := harness.TraceKey(app, m.Mode, m.MaxInsts); key.ImageHash != m.ImageHash {
		return fmt.Errorf("image hash mismatch: trace %#x, rebuilt %#x (workload changed since capture?)",
			m.ImageHash, key.ImageHash)
	}
	mutate := func(c *cpu.Config) {
		if *drc > 0 {
			c.DRCEntries = *drc
		}
		if *width > 0 {
			c.IssueWidth = *width
		}
		c.ContextSwitchEvery = *ctxEvery
	}
	p, ccfg, err := app.Pipeline(m.Mode, mutate)
	if err != nil {
		return err
	}
	res, err := trace.Replay(tr, p, m.MaxInsts)
	if err != nil {
		return err
	}
	s := res.Stats
	fmt.Printf("replayed %s under %s (drc=%d width=%d)\n", m.Workload, m.Mode, ccfg.DRCEntries, ccfg.IssueWidth)
	fmt.Printf("instructions  %d\n", s.Instructions)
	fmt.Printf("cycles        %d\n", s.Cycles)
	fmt.Printf("IPC           %.3f\n", s.IPC())
	fmt.Printf("stalls        fetch=%d mem=%d exec=%d control=%d drc=%d\n",
		s.FetchStall, s.MemStall, s.ExecStall, s.ControlStall, s.DRCStall)
	if m.Mode == cpu.ModeVCFR {
		fmt.Printf("drc           lookups=%d miss=%.2f%% walks=%d\n",
			res.DRC.Lookups, 100*res.DRC.MissRate(), res.DRC.TableWalks)
	}
	return nil
}
