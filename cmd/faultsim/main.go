// Command faultsim runs fault-injection campaigns against the simulator and
// prints the detection-coverage table the paper's dependability claim is
// about: under complete instruction-address randomization, a corrupted
// control transfer lands on an unmapped randomized address and is detected,
// instead of silently corrupting the program.
//
// Usage:
//
//	faultsim
//	faultsim -workloads bzip2,mcf -faults branch-target,return-address
//	faultsim -injections 200 -seed 7 -json
//	faultsim -mode vcfr -bits 2
//
// The default invocation is the canonical campaign (three workloads, three
// modes, the full fault model, 120 injections per workload x mode cell);
// `experiments -mode faults` and the vcfrd POST /v1/faults endpoint run the
// same campaign and emit byte-identical envelopes with -json.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"vcfr/internal/fault"
	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloadsF = flag.String("workloads", "", "comma-separated workloads (default: the canonical campaign set)")
		mode       = flag.String("mode", "all", "architecture modes: baseline | naive | vcfr | all")
		faultsF    = flag.String("faults", "", "comma-separated fault kinds (default: the full fault model)")
		injections = flag.Int("injections", 0, "injections per workload x mode cell (0 = default 120)")
		seed       = flag.Int64("seed", 42, "campaign seed (layouts, sites, and flip masks all derive from it)")
		scale      = flag.Int("scale", 1, "workload iteration scale")
		spread     = flag.Int("spread", 0, "ILR scatter factor (0 = default)")
		maxInsts   = flag.Uint64("instructions", 0, "reference-run instruction cap (0 = default 25000)")
		bits       = flag.Int("bits", 1, "bits flipped per injection")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel injection workers")
		traceCache = flag.Int("trace-cache", 256, "in-memory trace cache budget in MiB for the clean references (0 disables)")
		jsonOut    = flag.Bool("json", false, "emit the campaign as a versioned results envelope instead of a text table")
	)
	flag.Parse()

	modes, err := fault.ParseModes(*mode)
	if err != nil {
		return err
	}
	cfg := fault.Config{
		Modes:      modes,
		Injections: *injections,
		Seed:       *seed,
		Scale:      *scale,
		Spread:     *spread,
		MaxInsts:   *maxInsts,
		Bits:       *bits,
	}
	if *workloadsF != "" {
		cfg.Workloads = strings.Split(*workloadsF, ",")
	}
	if *faultsF != "" {
		kinds, err := fault.ParseKinds(strings.Split(*faultsF, ","))
		if err != nil {
			return err
		}
		cfg.Kinds = kinds
	}

	r := harness.NewRunner(*workers)
	if *traceCache > 0 {
		r.Traces = trace.NewCache(int64(*traceCache) << 20)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := fault.RunCampaign(ctx, r, cfg, nil)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := results.Write(os.Stdout, rep.Envelope()); err != nil {
			return err
		}
	} else {
		fmt.Print(rep.Table().Render())
	}
	if rep.Partial {
		return fmt.Errorf("campaign incomplete: some injections were not executed")
	}
	return nil
}
