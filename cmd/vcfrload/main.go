// Command vcfrload load-tests a vcfrd service (single process or
// coordinator fleet) through the unified /v1/jobs API: it fires a mixed
// stream of small run/sweep/faults/attacks jobs at the target with bounded
// concurrency, follows each job to completion, and reports throughput and
// latency percentiles as JSON — the producer behind BENCH_service.json.
//
// Usage:
//
//	vcfrload -addr http://127.0.0.1:8642 -n 2000 -c 32
//	vcfrload -addr http://127.0.0.1:8650 -n 500 -c 16 -mix run=6,sweep=1,faults=1,attacks=1
//
// Jobs are deliberately tiny (instruction-capped runs, one-workload
// campaigns with a handful of injections) so the benchmark measures the
// service — queueing, scheduling, dispatch, serialization — rather than
// the simulator's own throughput.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vcfr/internal/fleet"
	"vcfr/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vcfrload:", err)
		os.Exit(1)
	}
}

// jobSpec is one weighted entry of the request mix.
type jobSpec struct {
	kind server.JobKind
	req  server.SimRequest
}

func run() error {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8642", "target vcfrd base URL")
		n       = flag.Int("n", 2000, "total jobs to run")
		c       = flag.Int("c", 32, "concurrent in-flight jobs")
		mix     = flag.String("mix", "run=8,sweep=1,faults=1,attacks=1", "kind weights, kind=weight comma list")
		timeout = flag.Duration("timeout", 10*time.Minute, "whole-benchmark deadline")
	)
	flag.Parse()

	specs, err := buildMix(*mix)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client := &fleet.Client{Base: strings.TrimRight(*addr, "/"), HTTP: &http.Client{}}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		perKind   = map[string]int{}
		errs      atomic.Uint64
		retried   atomic.Uint64
		next      atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= *n || ctx.Err() != nil {
					return
				}
				spec := specs[i%len(specs)]
				t0 := time.Now()
				if err := oneJob(ctx, client, spec, &retried); err != nil {
					errs.Add(1)
					continue
				}
				d := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, d)
				perKind[string(spec.kind)]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	report := map[string]any{
		"target":         *addr,
		"requests":       *n,
		"concurrency":    *c,
		"mix":            *mix,
		"completed":      len(latencies),
		"errors":         errs.Load(),
		"submit_retries": retried.Load(),
		"duration_s":     round3(elapsed.Seconds()),
		"throughput_rps": round3(float64(len(latencies)) / elapsed.Seconds()),
		"latency_ms": map[string]float64{
			"mean": round3(meanMS(latencies)),
			"p50":  round3(pctMS(latencies, 0.50)),
			"p90":  round3(pctMS(latencies, 0.90)),
			"p99":  round3(pctMS(latencies, 0.99)),
			"p999": round3(pctMS(latencies, 0.999)),
			"max":  round3(pctMS(latencies, 1)),
		},
		"per_kind": perKind,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// oneJob drives one job start to finish: submit (retrying 429/503 refusals
// with a short pause — backpressure is the service working as designed, not
// a failure), follow the event stream, fetch the result.
func oneJob(ctx context.Context, c *fleet.Client, spec jobSpec, retried *atomic.Uint64) error {
	var id string
	var err error
	for attempt := 0; ; attempt++ {
		id, err = c.Submit(ctx, spec.kind, spec.req)
		if err == nil {
			break
		}
		if attempt >= 400 || ctx.Err() != nil ||
			(!strings.Contains(err.Error(), "429") && !strings.Contains(err.Error(), "503")) {
			return err
		}
		retried.Add(1)
		select {
		case <-time.After(25 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if err := c.Wait(ctx, id, nil); err != nil {
		return err
	}
	_, err = c.Result(ctx, id)
	return err
}

// buildMix expands "run=8,sweep=1,..." into a weighted round-robin schedule
// of tiny job templates. Workloads rotate per slot so the trace cache is
// exercised but not trivially hot.
func buildMix(s string) ([]jobSpec, error) {
	names := []string{"bzip2", "sjeng", "xalan"}
	widx := 0
	pick := func() string { w := names[widx%len(names)]; widx++; return w }
	var specs []jobSpec
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		weight, err := strconv.Atoi(kv[1])
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("bad weight in %q", part)
		}
		for i := 0; i < weight; i++ {
			switch kind := server.JobKind(kv[0]); kind {
			case server.JobRun:
				specs = append(specs, jobSpec{kind, server.SimRequest{
					Workload: pick(), Mode: "vcfr", Instructions: 2000,
				}})
			case server.JobSweep:
				specs = append(specs, jobSpec{kind, server.SimRequest{
					Workloads: []string{pick()}, Instructions: 2000,
				}})
			case server.JobFaults:
				specs = append(specs, jobSpec{kind, server.SimRequest{
					Workloads: []string{pick()}, Injections: 2, Instructions: 2000,
				}})
			case server.JobAttacks:
				specs = append(specs, jobSpec{kind, server.SimRequest{
					Workloads: []string{pick()}, MaxLeaks: 4, AdvanceInsts: 500, Instructions: 2000,
				}})
			default:
				return nil, fmt.Errorf("unknown kind %q in mix", kv[0])
			}
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return specs, nil
}

func meanMS(d []time.Duration) float64 {
	if len(d) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d {
		sum += v
	}
	return float64(sum.Milliseconds()) / float64(len(d))
}

// pctMS returns the q-quantile (0 < q <= 1) of the sorted latency slice, in
// milliseconds (nearest-rank method).
func pctMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
