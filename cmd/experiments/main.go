// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -experiment fig12
//	experiments -experiment all -scale 2 -workers 8
//	experiments -experiment fig13 -workloads h264ref,lbm -instructions 2000000
//	experiments -experiment all -cache .vcfr-cache.json
//	experiments -mode faults
//	experiments -mode faults -injections 200 -stats-json
//	experiments -mode attacks
//	experiments -mode attacks -payloads exfiltrate -stats-json
//	experiments -mode multicore
//	experiments -mode multicore -cells 2c4t -stats-json
//
// -mode faults runs the dependability fault-injection campaign instead of
// the timing tables: the same campaign `faultsim` runs, across all three
// architecture modes, printing the detection-coverage table (or, with
// -stats-json, the campaign results envelope byte-identical to
// `faultsim -json`).
//
// -mode attacks runs the adversary-in-the-loop security evaluation: the same
// campaign `attacksim` runs, printing the work-factor table (or, with
// -stats-json, the envelope byte-identical to `attacksim -json`).
//
// -mode multicore runs the multi-tenant interference campaign: the same
// campaign `clustersim` runs, printing the co-run slowdown table (or, with
// -stats-json, the envelope byte-identical to `clustersim -json`).
//
// Each experiment prints an aligned text table with the same rows/series the
// paper reports, plus the paper's headline number for comparison.
//
// Experiments are sharded into (experiment, workload) cells and run on a
// bounded worker pool (-workers, default GOMAXPROCS). Every cell derives its
// own PRNG seed from (base seed, experiment id, cell name), so output is
// byte-identical regardless of worker count or goroutine scheduling. With
// -cache, finished cells are memoized on disk and repeated invocations skip
// them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"vcfr/internal/attack"
	"vcfr/internal/fault"
	"vcfr/internal/harness"
	"vcfr/internal/multicore"
	"vcfr/internal/results"
	"vcfr/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode       = flag.String("mode", "tables", "what to run: tables (the paper's timing tables) | faults (the dependability fault campaign) | attacks (the adversary-in-the-loop security evaluation) | multicore (the multi-tenant interference campaign)")
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		workloadsF = flag.String("workloads", "", "comma-separated workload subset (default: experiment's own set)")
		scale      = flag.Int("scale", 1, "workload iteration scale")
		maxInsts   = flag.Uint64("instructions", 0, "per-run instruction cap (0 = run to completion)")
		seed       = flag.Int64("seed", 42, "randomization seed")
		spread     = flag.Int("spread", 0, "ILR scatter factor (0 = harness default)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel cell workers")
		cachePath  = flag.String("cache", "", "results cache file; computed cells are reused across runs")
		cellTime   = flag.Duration("cell-timeout", 0, "per-cell time budget (0 = none); overruns become error rows")
		list       = flag.Bool("list", false, "list experiments and exit")
		format     = flag.String("format", "text", "output format: text | json")
		traceCache = flag.Int("trace-cache", 256, "in-memory trace cache budget in MiB for record-once/replay-many execution (0 disables)")
		statsJSON  = flag.Bool("stats-json", false, "instead of table experiments, run every workload under all three modes and emit full per-run Results as JSON (with -mode faults/attacks: emit the campaign envelope)")
		injections = flag.Int("injections", 0, "with -mode faults: injections per workload x mode cell (0 = default 120)")
		faultsF    = flag.String("faults", "", "with -mode faults: comma-separated fault kinds (default: the full fault model)")
		bits       = flag.Int("bits", 1, "with -mode faults: bits flipped per injection")
		payloadsF  = flag.String("payloads", "", "with -mode attacks: comma-separated payload templates (default: all three)")
		budget     = flag.Int("budget", 0, "with -mode attacks: leak budget B0 (0 = default 16)")
		rerandN    = flag.Int("rerand-every", 0, "with -mode attacks: re-randomization period in leak ops (0 = default 5)")
		cellsF     = flag.String("cells", "", "with -mode multicore: comma-separated cores×tenants cells, e.g. 2c4t,1c2t (default: the canonical grid)")
		quantum    = flag.Uint64("quantum", 0, "with -mode multicore: scheduler time slice in instructions (0 = default 10000)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-24s %s\n%-24s   paper: %s\n", e.ID, e.Desc, "", e.Paper)
		}
		return nil
	}

	cfg := harness.Config{
		Scale:    *scale,
		MaxInsts: *maxInsts,
		Seed:     *seed,
		Spread:   *spread,
	}
	if *workloadsF != "" {
		cfg.Workloads = strings.Split(*workloadsF, ",")
	}

	var exps []harness.Experiment
	if *experiment == "all" {
		exps = harness.Experiments
	} else {
		e, err := harness.ByID(*experiment)
		if err != nil {
			return err
		}
		exps = []harness.Experiment{e}
	}

	r := harness.NewRunner(*workers)
	r.CellTimeout = *cellTime
	if *cachePath != "" {
		r.Cache = harness.OpenCache(*cachePath)
	}
	if *traceCache > 0 {
		r.Traces = trace.NewCache(int64(*traceCache) << 20)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *mode {
	case "tables":
	case "faults":
		fcfg := fault.Config{
			Workloads:  cfg.Workloads,
			Injections: *injections,
			Seed:       *seed,
			Scale:      *scale,
			Spread:     *spread,
			MaxInsts:   *maxInsts,
			Bits:       *bits,
		}
		if *faultsF != "" {
			kinds, err := fault.ParseKinds(strings.Split(*faultsF, ","))
			if err != nil {
				return err
			}
			fcfg.Kinds = kinds
		}
		rep, err := fault.RunCampaign(ctx, r, fcfg, nil)
		if err != nil {
			return err
		}
		if *statsJSON {
			if err := results.Write(os.Stdout, rep.Envelope()); err != nil {
				return err
			}
		} else {
			fmt.Print(rep.Table().Render())
		}
		if rep.Partial {
			return fmt.Errorf("campaign incomplete: some injections were not executed")
		}
		return nil
	case "attacks":
		acfg := attack.Config{
			Workloads:   cfg.Workloads,
			Seed:        *seed,
			Scale:       *scale,
			Spread:      *spread,
			MaxInsts:    *maxInsts,
			LeakBudget:  *budget,
			RerandEvery: *rerandN,
		}
		if *payloadsF != "" {
			payloads, err := attack.ParsePayloads(strings.Split(*payloadsF, ","))
			if err != nil {
				return err
			}
			acfg.Payloads = payloads
		}
		rep, err := attack.RunCampaign(ctx, r, acfg, nil)
		if err != nil {
			return err
		}
		if *statsJSON {
			if err := results.Write(os.Stdout, rep.Envelope()); err != nil {
				return err
			}
		} else {
			fmt.Print(rep.Table().Render())
		}
		if rep.Partial {
			return fmt.Errorf("campaign incomplete: some cells were not executed")
		}
		return nil
	case "multicore":
		mcfg := multicore.Config{
			Workloads: cfg.Workloads,
			Quantum:   *quantum,
			Seed:      *seed,
			Scale:     *scale,
			Spread:    *spread,
			MaxInsts:  *maxInsts,
		}
		if *cellsF != "" {
			cells, err := multicore.ParseCells(*cellsF)
			if err != nil {
				return err
			}
			mcfg.Cells = cells
		}
		rep, err := multicore.RunCampaign(ctx, r, mcfg, nil)
		if err != nil {
			return err
		}
		if *statsJSON {
			if err := results.Write(os.Stdout, rep.Envelope()); err != nil {
				return err
			}
		} else {
			fmt.Print(rep.Table().Render())
		}
		if rep.Partial {
			return fmt.Errorf("campaign incomplete: some cells were not executed")
		}
		return nil
	default:
		return fmt.Errorf("unknown -mode %q (want tables, faults, attacks, or multicore)", *mode)
	}

	if *statsJSON {
		rows, err := harness.StatsSweep(ctx, r, cfg)
		if err != nil {
			return err
		}
		// One schema across every entry point: the sweep rides the same
		// versioned envelope the vcfrd service and vcfrsim emit. A partial
		// sweep (cancelled, or cells failed) still prints every finished
		// row, then exits non-zero so scripts notice.
		env := results.NewSweep(rows)
		if err := results.Write(os.Stdout, env); err != nil {
			return err
		}
		if env.Sweep.Partial {
			return fmt.Errorf("stats sweep incomplete: some cells failed or were cancelled")
		}
		return nil
	}

	start := time.Now()
	results := r.RunAll(ctx, exps, cfg)

	type jsonResult struct {
		*harness.Table
		Paper   string  `json:"paper"`
		Seconds float64 `json:"seconds"`
	}
	var out []jsonResult
	var failed int
	for i, res := range results {
		e := exps[i]
		if res.Err != nil {
			// One broken experiment must not abort the sweep: report it and
			// keep printing the others.
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, res.Err)
			failed++
			continue
		}
		switch *format {
		case "text":
			fmt.Print(res.Table.Render())
			fmt.Printf("paper: %s   (%.1fs)\n\n", e.Paper, res.Elapsed.Seconds())
		case "json":
			out = append(out, jsonResult{Table: res.Table, Paper: e.Paper, Seconds: res.Elapsed.Seconds()})
		default:
			return fmt.Errorf("unknown -format %q", *format)
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "sweep: %d experiments in %.1fs (workers=%d)\n",
		len(exps), time.Since(start).Seconds(), *workers)
	if r.Cache != nil {
		hits, misses := r.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses (%s)\n", hits, misses, *cachePath)
		if err := r.Cache.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: saving cache: %v\n", err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d experiments failed", failed, len(exps))
	}
	return ctx.Err()
}
