// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -experiment fig12
//	experiments -experiment all -scale 2
//	experiments -experiment fig13 -workloads h264ref,lbm -maxinsts 2000000
//
// Each experiment prints an aligned text table with the same rows/series the
// paper reports, plus the paper's headline number for comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vcfr/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		workloadsF = flag.String("workloads", "", "comma-separated workload subset (default: experiment's own set)")
		scale      = flag.Int("scale", 1, "workload iteration scale")
		maxInsts   = flag.Uint64("instructions", 0, "per-run instruction cap (0 = run to completion)")
		seed       = flag.Int64("seed", 42, "randomization seed")
		spread     = flag.Int("spread", 0, "ILR scatter factor (0 = harness default)")
		list       = flag.Bool("list", false, "list experiments and exit")
		format     = flag.String("format", "text", "output format: text | json")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-24s %s\n%-24s   paper: %s\n", e.ID, e.Desc, "", e.Paper)
		}
		return nil
	}

	cfg := harness.Config{
		Scale:    *scale,
		MaxInsts: *maxInsts,
		Seed:     *seed,
		Spread:   *spread,
	}
	if *workloadsF != "" {
		cfg.Workloads = strings.Split(*workloadsF, ",")
	}

	var exps []harness.Experiment
	if *experiment == "all" {
		exps = harness.Experiments
	} else {
		e, err := harness.ByID(*experiment)
		if err != nil {
			return err
		}
		exps = []harness.Experiment{e}
	}

	type jsonResult struct {
		*harness.Table
		Paper   string  `json:"paper"`
		Seconds float64 `json:"seconds"`
	}
	var results []jsonResult
	for _, e := range exps {
		start := time.Now()
		tb, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start).Seconds()
		switch *format {
		case "text":
			fmt.Print(tb.Render())
			fmt.Printf("paper: %s   (%.1fs)\n\n", e.Paper, elapsed)
		case "json":
			results = append(results, jsonResult{Table: tb, Paper: e.Paper, Seconds: elapsed})
		default:
			return fmt.Errorf("unknown -format %q", *format)
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}
