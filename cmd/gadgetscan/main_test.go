package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vcfr/internal/gadget"
	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestScanEnvelopeGolden pins the -json output byte for byte: the scanner
// and the randomizer are deterministic per seed, so the envelope for a
// built-in workload is a fixed document. elf-dispatch exercises the same
// pin over lifted real-binary text. Regenerate with -update after a
// deliberate scanner or schema change.
func TestScanEnvelopeGolden(t *testing.T) {
	for _, name := range []string{"xalan", "elf-dispatch"} {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.ByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			env, err := scanEnvelope(w.Img, gadget.DefaultMaxInsts, true, 7)
			if err != nil {
				t.Fatal(err)
			}
			got, err := results.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("gadget envelope drifted from %s:\n--- got ---\n%s", path, got)
			}

			// Sanity beyond the bytes: the envelope round-trips under the
			// pinned schema and the randomized section reports a strictly
			// smaller pool.
			env2, err := results.Unmarshal(got)
			if err != nil {
				t.Fatal(err)
			}
			g := env2.Gadget
			if g == nil || g.Randomized == nil {
				t.Fatal("envelope missing gadget report or randomized section")
			}
			if g.Randomized.Survivors >= g.Total || g.Randomized.RemovalRate <= 0 {
				t.Errorf("randomization removed nothing: %d of %d survive, removal %.3f",
					g.Randomized.Survivors, g.Total, g.Randomized.RemovalRate)
			}
		})
	}
}
