// Command gadgetscan is the ROPgadget-style scanner (Sec. V-B): it lists the
// gadget pool of a program image or built-in workload, shows which payload
// templates the pool supports, and — given a seed — how much of the pool
// survives randomization.
//
// Usage:
//
//	gadgetscan app.img
//	gadgetscan -workload xalan -randomize -seed 7
//	gadgetscan -print -max 3 app.img
//	gadgetscan -workload xalan -json
//
// -json emits the scan as a versioned results envelope (the same wire
// format every other tool in the repo speaks) instead of the text report.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vcfr/internal/gadget"
	"vcfr/internal/ilr"
	"vcfr/internal/program"
	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gadgetscan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload  = flag.String("workload", "", "scan a built-in workload instead of an image file")
		maxInsts  = flag.Int("max", gadget.DefaultMaxInsts, "max gadget body length (instructions)")
		randomize = flag.Bool("randomize", false, "also report the post-randomization surviving pool")
		seed      = flag.Int64("seed", 1, "randomization seed (with -randomize)")
		print     = flag.Bool("print", false, "print every unique gadget")
		jsonOut   = flag.Bool("json", false, "emit the scan as a versioned results envelope instead of text")
	)
	flag.Parse()

	var img *program.Image
	switch {
	case *workload != "":
		w, err := workloads.ByName(*workload, 1)
		if err != nil {
			return err
		}
		img = w.Img
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		img, err = program.Unmarshal(data)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -workload or an image file; see -h")
	}

	if *jsonOut {
		env, err := scanEnvelope(img, *maxInsts, *randomize, *seed)
		if err != nil {
			return err
		}
		return results.Write(os.Stdout, env)
	}

	pool := gadget.Scan(img, *maxInsts)
	unique := gadget.Unique(pool)
	fmt.Printf("%s: %d gadgets (%d unique)\n", img.Name, len(pool), len(unique))
	reportCensus(pool)
	reportTemplates("payloads", pool)

	if *print {
		lines := make([]string, 0, len(unique))
		for _, g := range unique {
			lines = append(lines, fmt.Sprintf("  %#08x  %s", g.Addr, g))
		}
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Println(l)
		}
	}

	if *randomize {
		res, err := ilr.Rewrite(img, ilr.Options{Seed: *seed})
		if err != nil {
			return err
		}
		surv := gadget.Survivors(pool, res.Tables)
		fmt.Printf("after randomization (seed %d): %d surviving, %.1f%% removed\n",
			*seed, len(surv), 100*gadget.RemovalRate(pool, surv))
		reportTemplates("payloads after", surv)
	}
	return nil
}

// scanEnvelope builds the -json results envelope: pool size, census, and
// payload feasibility, plus the surviving pool under one randomized layout
// when randomize is set.
func scanEnvelope(img *program.Image, maxInsts int, randomize bool, seed int64) (results.Envelope, error) {
	pool := gadget.Scan(img, maxInsts)
	rep := results.GadgetReport{
		Image:    img.Name,
		MaxInsts: maxInsts,
		Total:    len(pool),
		Unique:   len(gadget.Unique(pool)),
		Census:   censusMap(pool),
		Payloads: gadget.TryAllTemplates(pool),
	}
	if randomize {
		res, err := ilr.Rewrite(img, ilr.Options{Seed: seed})
		if err != nil {
			return results.Envelope{}, err
		}
		surv := gadget.Survivors(pool, res.Tables)
		rep.Randomized = &results.GadgetRandomized{
			Seed:        seed,
			Survivors:   len(surv),
			RemovalRate: gadget.RemovalRate(pool, surv),
			Payloads:    gadget.TryAllTemplates(surv),
		}
	}
	return results.NewGadget(rep), nil
}

// censusMap converts the kind census to the string-keyed map the results
// schema carries (encoding/json sorts the keys on the wire).
func censusMap(pool []gadget.Gadget) map[string]int {
	census := gadget.KindCensus(pool)
	out := make(map[string]int, len(census))
	for k, n := range census {
		out[string(k)] = n
	}
	return out
}

func reportCensus(pool []gadget.Gadget) {
	census := gadget.KindCensus(pool)
	kinds := make([]string, 0, len(census))
	for k := range census {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	fmt.Print("  capabilities:")
	for _, k := range kinds {
		fmt.Printf(" %s=%d", k, census[gadget.Kind(k)])
	}
	fmt.Println()
}

func reportTemplates(label string, pool []gadget.Gadget) {
	results := gadget.TryAllTemplates(pool)
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		status := "fails"
		if results[n] {
			status = "assembles"
		}
		fmt.Printf("  %s: %-18s %s\n", label, n, status)
	}
}
