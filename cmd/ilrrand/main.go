// Command ilrrand is the randomization software of Sec. IV-A: it reads a
// program image, applies complete per-instruction ILR, and writes the
// randomized artifacts.
//
// Usage:
//
//	ilrrand -seed 7 app.img
//
// writes app.vcfr.img (original layout, randomized control flow) and
// app.scattered.img (physically scattered layout) next to the input, and
// prints the rewrite statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vcfr/internal/ilr"
	"vcfr/internal/program"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ilrrand:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 1, "randomization seed")
		spread   = flag.Int("spread", 8, "scatter factor")
		confined = flag.Bool("page-confined", false, "randomize within 4 KiB pages")
		retrand  = flag.String("retrand", "arch", "return-address randomization: none|software|arch")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("need exactly one input image; see -h")
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	img, err := program.Unmarshal(data)
	if err != nil {
		return err
	}

	opts := ilr.Options{Seed: *seed, Spread: *spread, PageConfined: *confined}
	switch *retrand {
	case "none":
		opts.RetRand = ilr.RetRandNone
	case "software":
		opts.RetRand = ilr.RetRandSoftware
	case "arch":
		opts.RetRand = ilr.RetRandArch
	default:
		return fmt.Errorf("unknown -retrand %q", *retrand)
	}

	res, err := ilr.Rewrite(img, opts)
	if err != nil {
		return err
	}

	base := strings.TrimSuffix(path, ".img")
	if err := write(res.VCFR, base+".vcfr.img"); err != nil {
		return err
	}
	if err := write(res.Scattered, base+".scattered.img"); err != nil {
		return err
	}
	bundle, err := res.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(base+".ilr", bundle, 0o644); err != nil {
		return err
	}

	st := res.Stats
	fmt.Printf("randomized %q (seed %d, spread %d, retrand %s)\n",
		img.Name, *seed, *spread, res.Opts.RetRand)
	fmt.Printf("  instructions:      %d\n", st.Instructions)
	fmt.Printf("  code relocs:       %d\n", st.CodeRelocs)
	fmt.Printf("  data relocs:       %d\n", st.DataRelocs)
	fmt.Printf("  calls randomized:  %d (plain: %d)\n", st.CallsRandomized, st.CallsPlain)
	fmt.Printf("  failover targets:  %d\n", res.Tables.AllowedUnrand())
	fmt.Printf("  entropy:           %.1f bits/instruction\n", st.EntropyBits)
	fmt.Printf("  table size:        %d bytes\n", st.TableBytes)
	if st.SoftwareGrowth > 0 {
		fmt.Printf("  software growth:   %d bytes\n", st.SoftwareGrowth)
	}
	fmt.Printf("wrote %s.vcfr.img, %s.scattered.img and %s.ilr (self-contained bundle)\n", base, base, base)
	return nil
}

func write(img *program.Image, path string) error {
	data, err := img.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
