// Command attacksim runs adversary-in-the-loop attack campaigns against the
// simulator and prints the work-factor table the paper's security claim is
// about: a code-reuse attacker with a page-granular disclosure oracle owns
// the baseline machine in a leak or two, has to join leaked location-map and
// code pages under naive ILR (and loses that partial knowledge to every
// mid-execution re-randomization), and under VCFR gets every fired chain
// converted into a detected control violation.
//
// Usage:
//
//	attacksim
//	attacksim -workloads bzip2,sjeng -payloads print-and-exit,exfiltrate
//	attacksim -budget 32 -rerand-every 3 -seed 7 -json
//	attacksim -mode vcfr
//
// The default invocation is the canonical campaign (three workloads, three
// modes, three payloads, leak budget 16, re-randomization every 5 leak ops);
// `experiments -mode attacks` and the vcfrd POST /v1/attacks endpoint run
// the same campaign and emit byte-identical envelopes with -json.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"vcfr/internal/attack"
	"vcfr/internal/harness"
	"vcfr/internal/results"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloadsF  = flag.String("workloads", "", "comma-separated workloads (default: the canonical campaign set)")
		mode        = flag.String("mode", "all", "architecture modes: baseline | naive | vcfr | all")
		payloadsF   = flag.String("payloads", "", "comma-separated payload templates (default: all three)")
		seed        = flag.Int64("seed", 42, "campaign seed (layouts, leak serve orders, and every epoch derive from it)")
		scale       = flag.Int("scale", 1, "workload iteration scale")
		spread      = flag.Int("spread", 0, "ILR scatter factor (0 = default)")
		maxInsts    = flag.Uint64("instructions", 0, "fired-run instruction cap (0 = default 25000)")
		budget      = flag.Int("budget", 0, "leak budget B0 the success rate is measured at (0 = default 16)")
		maxLeaks    = flag.Int("max-leaks", 0, "leak-op exploration horizon per arm (0 = derive from the cell's universe)")
		rerandEvery = flag.Int("rerand-every", 0, "re-randomization period in leak ops (0 = default 5)")
		advance     = flag.Uint64("advance", 0, "victim instructions executed per leak op (0 = default 2000)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel cell workers")
		jsonOut     = flag.Bool("json", false, "emit the campaign as a versioned results envelope instead of a text table")
	)
	flag.Parse()

	modes, err := attack.ParseModes(*mode)
	if err != nil {
		return err
	}
	cfg := attack.Config{
		Modes:        modes,
		Seed:         *seed,
		Scale:        *scale,
		Spread:       *spread,
		MaxInsts:     *maxInsts,
		LeakBudget:   *budget,
		MaxLeaks:     *maxLeaks,
		RerandEvery:  *rerandEvery,
		AdvanceInsts: *advance,
	}
	if *workloadsF != "" {
		cfg.Workloads = strings.Split(*workloadsF, ",")
	}
	if *payloadsF != "" {
		payloads, err := attack.ParsePayloads(strings.Split(*payloadsF, ","))
		if err != nil {
			return err
		}
		cfg.Payloads = payloads
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := attack.RunCampaign(ctx, harness.NewRunner(*workers), cfg, nil)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := results.Write(os.Stdout, rep.Envelope()); err != nil {
			return err
		}
	} else {
		fmt.Print(rep.Table().Render())
	}
	if rep.Partial {
		return fmt.Errorf("campaign incomplete: some cells were not executed")
	}
	return nil
}
