// Command vxasm assembles VX assembly into a program image, or disassembles
// an image back to a listing.
//
// Usage:
//
//	vxasm -o app.img app.s          assemble
//	vxasm -d app.img                disassemble (listing to stdout)
//	vxasm -workload xalan -o x.img  emit a built-in workload's image
//	vxasm -workload xalan -src      dump a built-in workload's source
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vcfr/internal/asm"
	"vcfr/internal/program"
	"vcfr/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vxasm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("o", "", "output image path")
		disasm   = flag.Bool("d", false, "disassemble an image instead of assembling")
		workload = flag.String("workload", "", "emit a built-in workload instead of reading a source file")
		scale    = flag.Int("scale", 1, "workload scale (with -workload)")
		srcOnly  = flag.Bool("src", false, "with -workload: print the generated source and exit")
	)
	flag.Parse()

	if *workload != "" {
		w, err := workloads.ByName(*workload, *scale)
		if err != nil {
			return err
		}
		if *srcOnly {
			// Regenerate to get the source text (Workload carries the image).
			lst, err := asm.Listing(w.Img)
			if err != nil {
				return err
			}
			fmt.Print(lst)
			return nil
		}
		if *out == "" {
			*out = w.Name + ".img"
		}
		return writeImage(w.Img, *out)
	}

	if flag.NArg() != 1 {
		return fmt.Errorf("need exactly one input file (or -workload); see -h")
	}
	path := flag.Arg(0)

	if *disasm {
		img, err := readImage(path)
		if err != nil {
			return err
		}
		lst, err := asm.Listing(img)
		if err != nil {
			return err
		}
		fmt.Print(lst)
		return nil
	}

	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	img, err := asm.Assemble(name, string(src))
	if err != nil {
		return err
	}
	if *out == "" {
		*out = name + ".img"
	}
	if err := writeImage(img, *out); err != nil {
		return err
	}
	text := img.Text()
	fmt.Printf("%s: %d bytes of text at %#x, entry %#x, %d relocs\n",
		*out, len(text.Data), text.Addr, img.Entry, len(img.Relocs))
	return nil
}

func writeImage(img *program.Image, path string) error {
	data, err := img.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func readImage(path string) (*program.Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return program.Unmarshal(data)
}
