// Command vcfrsim runs the cycle-level simulator on a workload or a VX
// source file, in any of the three architecture modes.
//
// Usage:
//
//	vcfrsim -workload h264ref -mode vcfr -drc 128
//	vcfrsim -mode naive -instructions 2000000 app.s
//	vcfrsim -workload xalan -mode all
//	vcfrsim -workload elf-fib -mode all
//	vcfrsim -elf ./prog.elf -mode vcfr
//	vcfrsim -workload h264ref -mode vcfr -record h264.vxt
//	vcfrsim -workload h264ref -replay h264.vxt -drc 64
//	vcfrsim -workload lbm -mode all -stats-json
//
// It prints IPC, the stall breakdown, cache statistics, and (under VCFR)
// DRC statistics and the dynamic-power breakdown. With -stats-json the full
// per-mode Results are emitted as one versioned results.Envelope — the same
// schema, and for workload runs the same bytes, that the vcfrd service
// returns from POST /v1/simulate.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"

	"vcfr/internal/core"
	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/harness"
	"vcfr/internal/ilr"
	"vcfr/internal/power"
	"vcfr/internal/results"
	"vcfr/internal/stats"
	"vcfr/internal/trace"
	"vcfr/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vcfrsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "", "built-in workload name (see -list)")
		elfPath  = flag.String("elf", "", "run a RV64 ELF binary, lifted through the real-binary front end")
		bundle   = flag.String("bundle", "", "run a randomization bundle produced by ilrrand")
		list     = flag.Bool("list", false, "list built-in workloads")
		mode     = flag.String("mode", "vcfr", "baseline | naive | vcfr | all")
		scale    = flag.Int("scale", 1, "workload scale")
		maxInsts = flag.Uint64("instructions", 0, "instruction cap (0 = to completion)")
		seed     = flag.Int64("seed", 1, "randomization seed")
		spread   = flag.Int("spread", 8, "scatter factor")
		drc      = flag.Int("drc", 128, "DRC entries")
		traceN   = flag.Uint64("trace", 0, "print the first N executed instructions (UPC/RPC/storage)")
		width    = flag.Int("width", 1, "issue width (1 = the paper's core, 2 = dual-issue)")
		ctxEvery = flag.Uint64("ctxswitch", 0, "flush process-private state every N instructions")
		record   = flag.String("record", "", "capture the run into a trace file (single mode only)")
		replayF  = flag.String("replay", "", "replay a trace file through the configured machine (mode taken from the trace)")
		jsonOut  = flag.Bool("stats-json", false, "emit a versioned results.Envelope as JSON instead of the text report")
		interval = flag.Uint64("interval", 0, "snapshot counters every N instructions; the per-window series lands in the envelope's intervals field")
		emulate  = flag.Bool("emulate", false, "also run the software-ILR emulation and report its counters (emulated-ilr row under -stats-json)")
	)
	flag.Parse()

	if *list {
		// The name/source/desc columns mirror the fields of GET /v1/workloads,
		// so the CLI listing and the service listing describe the same registry
		// the same way.
		for _, n := range workloads.Names() {
			w, err := workloads.ByName(n, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %-10s %s\n", n, w.Source, w.Desc)
		}
		return nil
	}

	modes, err := parseModes(*mode)
	if err != nil {
		return err
	}
	mutate := func(c *cpu.Config) {
		c.DRCEntries = *drc
		c.IssueWidth = *width
		c.ContextSwitchEvery = *ctxEvery
		c.SampleEvery = *interval
	}
	ccfgOf := func(m cpu.Mode) cpu.Config {
		c := cpu.DefaultConfig(m)
		mutate(&c)
		return c
	}
	// Flag bounds live in exactly one place — cpu.Config.Validate, the same
	// check the vcfrd service applies to request bodies — so a bad -drc or
	// -width fails here with the same message a bad HTTP request gets.
	for _, m := range modes {
		if err := ccfgOf(m).Validate(); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The canonical JSON path: a plain workload simulation goes through the
	// exact entry point the vcfrd service uses (harness.SimulateRuns +
	// results.Marshal), so `vcfrsim -workload W -stats-json` and
	// `POST /v1/simulate {"workload": "W", ...}` produce identical bytes.
	if *jsonOut && *workload != "" && *bundle == "" && *record == "" && *replayF == "" && !*emulate && flag.NArg() == 0 {
		cfg := harness.Config{Scale: *scale, MaxInsts: *maxInsts, Seed: *seed, Spread: *spread}
		rows, err := harness.SimulateRuns(ctx, harness.NewRunner(1), *workload, modes, cfg, mutate)
		if err != nil {
			return err
		}
		return results.Write(os.Stdout, results.NewRun(rows...))
	}

	var sys *core.System
	var input []byte
	name := *workload
	switch {
	case *bundle != "":
		data, err := os.ReadFile(*bundle)
		if err != nil {
			return err
		}
		res, err := ilr.UnmarshalBundle(data)
		if err != nil {
			return err
		}
		sys = core.FromRewrite(res)
		name = res.Orig.Name
	case *workload != "":
		w, err := workloads.ByName(*workload, *scale)
		if err != nil {
			return err
		}
		input = w.Input
		sys, err = core.NewSystem(w.Img, core.Options{Seed: *seed, Spread: *spread})
		if err != nil {
			return err
		}
	case *elfPath != "":
		data, err := os.ReadFile(*elfPath)
		if err != nil {
			return err
		}
		name = strings.TrimSuffix(filepath.Base(*elfPath), filepath.Ext(*elfPath))
		w, err := workloads.FromELF(data, name)
		if err != nil {
			return err
		}
		sys, err = core.NewSystem(w.Img, core.Options{Seed: *seed, Spread: *spread})
		if err != nil {
			return err
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		name = strings.TrimSuffix(filepath.Base(flag.Arg(0)), filepath.Ext(flag.Arg(0)))
		sys, err = core.NewSystemFromSource(name, string(src), core.Options{Seed: *seed, Spread: *spread})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -workload, -elf, or a source file; see -h")
	}

	// With -stats-json, every remaining path accumulates envelope rows and
	// emits one results.Envelope at the end instead of text reports.
	var jsonRows []results.Run
	emit := func(w io.Writer, m cpu.Mode, res cpu.Result) error {
		if *jsonOut {
			row := results.Run{
				Workload:  name,
				Mode:      m.String(),
				Seed:      *seed,
				Config:    ccfgOf(m),
				Result:    res,
				Intervals: results.MakeIntervals(res.Intervals),
			}
			if m != cpu.ModeBaseline {
				st := sys.Stats()
				row.Ilr = &st
			}
			jsonRows = append(jsonRows, row)
			return nil
		}
		report(w, m, res, *drc)
		return nil
	}
	// -emulate appends the software-ILR emulation's counters — the emu.Stats
	// that used to be reachable only through the interpreter paths — as an
	// extra emulated-ilr row (or text block) after the pipeline modes.
	emitEmulated := func() error {
		if !*emulate {
			return nil
		}
		rr, err := sys.Run(core.ExecEmulated, input...)
		if err != nil {
			return err
		}
		if *jsonOut {
			st, ilrSt := rr.Stats, sys.Stats()
			jsonRows = append(jsonRows, results.Run{
				Workload: name,
				Mode:     "emulated-ilr",
				Seed:     *seed,
				Emu:      &st,
				Ilr:      &ilrSt,
			})
			return nil
		}
		reportEmulated(os.Stdout, rr.Stats)
		return nil
	}
	finish := func() error {
		if err := emitEmulated(); err != nil {
			return err
		}
		if !*jsonOut {
			return nil
		}
		return results.Write(os.Stdout, results.NewRun(jsonRows...))
	}

	// -replay drives the configured machine from a recorded trace instead of
	// executing; the architecture mode comes from the trace itself. The
	// machine must be built from the same (workload, seed, spread) the trace
	// was captured with — a mismatch is caught as a replay divergence.
	if *replayF != "" {
		tr, err := trace.LoadFile(*replayF)
		if err != nil {
			return err
		}
		m := tr.Meta.Mode
		p, err := sys.Pipeline(m, mutate)
		if err != nil {
			return err
		}
		instCap := tr.Meta.MaxInsts
		if *maxInsts > 0 {
			instCap = *maxInsts
		}
		res, err := trace.ReplayContext(ctx, tr, p, instCap)
		if err != nil {
			return err
		}
		if err := emit(os.Stdout, m, res); err != nil {
			return err
		}
		return finish()
	}

	// -record captures the run into a trace file alongside the normal report.
	if *record != "" {
		if len(modes) != 1 {
			return fmt.Errorf("-record needs a single -mode")
		}
		m := modes[0]
		p, err := sys.Pipeline(m, mutate)
		if err != nil {
			return err
		}
		tr, res, err := trace.CaptureContext(ctx, p, *maxInsts, trace.Meta{
			Workload: *workload, Mode: m, LayoutSeed: *seed, Spread: *spread,
			Scale: *scale, MaxInsts: *maxInsts,
		})
		if err != nil {
			return err
		}
		if err := tr.SaveFile(*record); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "vcfrsim: recorded %d instructions to %s\n", tr.Len(), *record)
		if err := emit(os.Stdout, m, res); err != nil {
			return err
		}
		return finish()
	}

	// -mode all simulates the three architectures concurrently; each mode's
	// report is buffered and printed in mode order, so the output is
	// identical to a sequential run. Tracing interleaves prints with
	// execution, and -stats-json accumulates ordered envelope rows, so both
	// force the sequential path.
	if *traceN > 0 || *jsonOut || len(modes) == 1 {
		for _, m := range modes {
			res, err := simulate(sys, m, mutate, *maxInsts, *traceN)
			if err != nil {
				return err
			}
			if err := emit(os.Stdout, m, res); err != nil {
				return err
			}
		}
		return finish()
	}
	var (
		wg   sync.WaitGroup
		bufs = make([]bytes.Buffer, len(modes))
		errs = make([]error, len(modes))
	)
	for i, m := range modes {
		wg.Add(1)
		go func(i int, m cpu.Mode) {
			defer wg.Done()
			res, err := sys.Simulate(m, mutate, *maxInsts)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", m, err)
				return
			}
			errs[i] = emit(&bufs[i], m, res)
		}(i, m)
	}
	wg.Wait()
	for i := range modes {
		if errs[i] != nil {
			return errs[i]
		}
		if _, err := bufs[i].WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return finish()
}

// simulate runs one mode, optionally tracing the first traceN instructions.
func simulate(sys *core.System, m cpu.Mode, mutate func(*cpu.Config), maxInsts, traceN uint64) (cpu.Result, error) {
	if traceN == 0 {
		return sys.Simulate(m, mutate, maxInsts)
	}
	p, err := sys.Pipeline(m, mutate)
	if err != nil {
		return cpu.Result{}, err
	}
	fmt.Printf("--- trace (%s): first %d instructions ---\n", m, traceN)
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s %s\n", "seq", "cycle", "UPC", "RPC", "storage", "instruction")
	p.SetTracer(func(e cpu.TraceEvent) {
		if e.Seq < traceN {
			fmt.Printf("%-8d %-10d %#-10x %#-10x %#-10x %s\n",
				e.Seq, e.Cycle, e.UPC, e.RPC, e.Storage, e.Text)
		}
	})
	return p.Run(maxInsts)
}

func parseModes(s string) ([]cpu.Mode, error) {
	switch s {
	case "baseline":
		return []cpu.Mode{cpu.ModeBaseline}, nil
	case "naive":
		return []cpu.Mode{cpu.ModeNaiveILR}, nil
	case "vcfr":
		return []cpu.Mode{cpu.ModeVCFR}, nil
	case "all":
		return []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}, nil
	default:
		return nil, fmt.Errorf("unknown -mode %q", s)
	}
}

// report renders the text report by resolving canonical names against the
// statistics spine (the run's value-backed registry) instead of naming
// struct fields a second time; the output bytes are unchanged from the
// pre-spine report.
func report(w io.Writer, mode cpu.Mode, res cpu.Result, drcEntries int) {
	snap := res.Registry().Snapshot()
	u := func(key string) uint64 {
		v, _ := snap.Uint(key)
		return v
	}
	rate := func(numKey, denKey string) float64 {
		num, den := u(numKey), u(denKey)
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	fmt.Fprintf(w, "=== %s ===\n", mode)
	fmt.Fprintf(w, "instructions  %d\n", u("cpu.instructions"))
	fmt.Fprintf(w, "cycles        %d\n", u("cpu.cycles"))
	fmt.Fprintf(w, "IPC           %.3f\n", rate("cpu.instructions", "cpu.cycles"))
	fmt.Fprintf(w, "stalls        fetch=%d mem=%d exec=%d control=%d drc=%d\n",
		u("cpu.stall.fetch"), u("cpu.stall.mem"), u("cpu.stall.exec"),
		u("cpu.stall.control"), u("cpu.stall.drc"))
	prefetchSettled := u("mem.il1.prefetch.useful") + u("mem.il1.prefetch.useless")
	prefetchUseless := 0.0
	if prefetchSettled > 0 {
		prefetchUseless = float64(u("mem.il1.prefetch.useless")) / float64(prefetchSettled)
	}
	fmt.Fprintf(w, "il1           accesses=%d miss=%.2f%% prefetch-useless=%.1f%%\n",
		u("mem.il1.accesses"), 100*rate("mem.il1.misses", "mem.il1.accesses"), 100*prefetchUseless)
	fmt.Fprintf(w, "dl1           accesses=%d miss=%.2f%%\n",
		u("mem.dl1.accesses"), 100*rate("mem.dl1.misses", "mem.dl1.accesses"))
	fmt.Fprintf(w, "l2            accesses=%d miss=%.2f%%\n",
		u("mem.l2.accesses"), 100*rate("mem.l2.misses", "mem.l2.accesses"))
	fmt.Fprintf(w, "dram          accesses=%d row-hit=%.1f%%\n",
		u("dram.accesses"), 100*rate("dram.row_hits", "dram.accesses"))
	condAcc := 0.0
	if u("bpred.cond.lookups") > 0 {
		condAcc = 1 - rate("bpred.cond.mispredicts", "bpred.cond.lookups")
	}
	fmt.Fprintf(w, "bpred         cond-acc=%.2f%% btb-miss=%d ras-mispred=%d\n",
		100*condAcc, u("bpred.btb.misses"), u("bpred.ras.mispredicts"))
	fmt.Fprintf(w, "itlb          accesses=%d misses=%d\n",
		u("cpu.itlb.accesses"), u("cpu.itlb.misses"))
	if mode == cpu.ModeVCFR {
		fmt.Fprintf(w, "drc           lookups=%d miss=%.2f%% (rand=%d derand=%d walks=%d)\n",
			u("drc.lookups"), 100*rate("drc.misses", "drc.lookups"),
			u("drc.lookups.rand"), u("drc.lookups.derand"), u("drc.table_walks"))
		cfg := cpu.DefaultConfig(mode)
		cfg.DRCEntries = drcEntries
		b := power.DefaultModel().Analyze(res, cfg)
		fmt.Fprintf(w, "power         drc=%.1fpJ cpu=%.1fpJ overhead=%.3f%%\n",
			b.DRC, b.Total-b.DRAM, b.DRCOverheadPct())
		a := power.DefaultModel().AnalyzeArea(cfg)
		fmt.Fprintf(w, "area          drc share of on-chip SRAM = %.3f%%\n", a.DRCOverheadPct())
	}
	if len(res.Out) > 0 && len(res.Out) < 64 {
		fmt.Fprintf(w, "output        %q\n", res.Out)
	}
	fmt.Fprintln(w)
}

// reportEmulated prints the software-ILR emulation counters, likewise
// resolved through the spine.
func reportEmulated(w io.Writer, st emu.Stats) {
	reg := stats.New()
	st.Register(reg)
	snap := reg.Snapshot()
	u := func(key string) uint64 {
		v, _ := snap.Uint(key)
		return v
	}
	fmt.Fprintf(w, "=== emulated-ilr ===\n")
	fmt.Fprintf(w, "instructions  %d\n", u("emu.instructions"))
	fmt.Fprintf(w, "host-cycles   %d\n", u("emu.host_cycles"))
	fmt.Fprintf(w, "control       taken=%d calls=%d rets=%d indirect=%d\n",
		u("emu.taken"), u("emu.calls"), u("emu.rets"), u("emu.indirect_cf"))
	fmt.Fprintf(w, "memory        loads=%d stores=%d\n", u("emu.loads"), u("emu.stores"))
	fmt.Fprintf(w, "unrandomized  %d\n", u("emu.unrandomized"))
	fmt.Fprintln(w)
}
