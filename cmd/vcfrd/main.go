// Command vcfrd serves the VCFR simulator over HTTP/JSON: a long-running
// service that answers "what is the overhead of config X on workload Y"
// queries concurrently, reusing one shared trace cache so repeated
// timing-only questions replay a captured execution instead of re-running
// it.
//
// Usage:
//
//	vcfrd                                   # listen on 127.0.0.1:8642
//	vcfrd -addr :9000 -workers 8 -queue 128
//	vcfrd -trace-cache 512 -job-timeout 5m
//
// Endpoints (see docs/ARCHITECTURE.md and EXPERIMENTS.md for a walkthrough):
//
//	POST /v1/simulate   synchronous simulation; body byte-identical to
//	                    `vcfrsim -stats-json` for the same parameters
//	POST /v1/sweep      asynchronous full sweep; poll /v1/jobs/{id}
//	GET  /v1/jobs/{id}  job state and result
//	GET  /v1/workloads  workload catalog
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text metrics
//	GET  /debug/pprof/  profiler
//
// SIGINT/SIGTERM drain gracefully: intake stops, accepted jobs finish (up
// to -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"vcfr/internal/harness"
	"vcfr/internal/server"
	"vcfr/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vcfrd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8642", "listen address (port 0 = ephemeral)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executors")
		queue      = flag.Int("queue", 64, "bounded job queue depth; a full queue answers 429")
		traceCache = flag.Int("trace-cache", 256, "shared trace cache budget in MiB (0 disables replay reuse)")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "default per-job execution deadline (0 = none)")
		retention  = flag.Int("job-retention", 256, "finished jobs kept pollable at /v1/jobs/{id}; oldest evicted past this")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	)
	flag.Parse()

	r := harness.NewRunner(0)
	if *traceCache > 0 {
		r.Traces = trace.NewCache(int64(*traceCache) << 20)
	} else {
		// A zero-budget cache admits nothing but still deduplicates
		// concurrent identical captures via its singleflight.
		r.Traces = trace.NewCache(0)
	}

	srv := server.New(server.Config{
		Addr:         *addr,
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:   *jobTimeout,
		JobRetention: *retention,
		Runner:       r,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	// The smoke test and service managers parse this line; keep its shape.
	fmt.Fprintf(os.Stderr, "vcfrd: listening on %s (workers=%d queue=%d trace-cache=%dMiB)\n",
		srv.Addr(), *workers, *queue, *traceCache)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintln(os.Stderr, "vcfrd: draining in-flight jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "vcfrd: drained, exiting")
	return nil
}
