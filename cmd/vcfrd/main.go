// Command vcfrd serves the VCFR simulator over HTTP/JSON: a long-running
// service that answers "what is the overhead of config X on workload Y"
// queries concurrently, reusing one shared trace cache so repeated
// timing-only questions replay a captured execution instead of re-running
// it.
//
// Usage:
//
//	vcfrd                                   # listen on 127.0.0.1:8642
//	vcfrd -addr :9000 -workers 8 -queue 128
//	vcfrd -trace-cache 512 -job-timeout 5m
//	vcfrd -coordinator -backends http://h1:8642,http://h2:8642
//
// Endpoints (see docs/ARCHITECTURE.md and EXPERIMENTS.md for a walkthrough):
//
//	POST   /v1/jobs            unified asynchronous submission (kind: run |
//	                           sweep | faults | attacks); 202 + job id
//	GET    /v1/jobs            job listing with state filter and cursor
//	GET    /v1/jobs/{id}       job state and result
//	GET    /v1/jobs/{id}/events  live progress as Server-Sent Events
//	DELETE /v1/jobs/{id}       cancel; answers the partial-rows envelope
//	POST   /v1/simulate        synchronous simulation; body byte-identical
//	                           to `vcfrsim -stats-json`
//	POST   /v1/sweep|faults|attacks  deprecated aliases of POST /v1/jobs
//	GET    /v1/artifacts/{ns}/{key}  content-addressed artifact exchange
//	GET    /v1/workloads       workload catalog
//	GET    /healthz            liveness
//	GET    /metrics            Prometheus text metrics
//	GET    /debug/pprof/       profiler
//
// In -coordinator mode the same API is served, but sweep and campaign jobs
// are sharded per workload across the -backends fleet and the shard
// envelopes merged byte-identically to single-process execution; a backend
// lost mid-campaign has its shards retried on the survivors.
//
// SIGINT/SIGTERM drain gracefully: intake stops, accepted jobs finish (up
// to -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"vcfr/internal/artifact"
	"vcfr/internal/fleet"
	"vcfr/internal/harness"
	"vcfr/internal/server"
	"vcfr/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vcfrd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8642", "listen address (port 0 = ephemeral)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executors")
		queue       = flag.Int("queue", 64, "bounded job queue depth; a full queue answers 429")
		traceCache  = flag.Int("trace-cache", 256, "shared trace cache budget in MiB (0 disables replay reuse)")
		jobTimeout  = flag.Duration("job-timeout", 2*time.Minute, "default per-job execution deadline (0 = none)")
		retention   = flag.Int("job-retention", 256, "finished jobs kept pollable at /v1/jobs/{id}; oldest evicted past this")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
		coordinator = flag.Bool("coordinator", false, "shard sweep/campaign jobs across -backends instead of executing locally")
		backends    = flag.String("backends", "", "comma-separated worker base URLs (coordinator mode)")
		artifacts   = flag.String("artifacts", "", "directory for the content-addressed artifact store (empty = off)")
		peer        = flag.String("artifact-peer", "", "base URL of a peer vcfrd to fetch missing artifacts from")
	)
	flag.Parse()

	r := harness.NewRunner(0)
	if *traceCache > 0 {
		r.Traces = trace.NewCache(int64(*traceCache) << 20)
	} else {
		// A zero-budget cache admits nothing but still deduplicates
		// concurrent identical captures via its singleflight.
		r.Traces = trace.NewCache(0)
	}

	cfg := server.Config{
		Addr:         *addr,
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:   *jobTimeout,
		JobRetention: *retention,
		Runner:       r,
	}
	if *artifacts != "" {
		store, err := artifact.Open(*artifacts)
		if err != nil {
			return fmt.Errorf("artifact store: %w", err)
		}
		cfg.Artifacts = store
		// Captured traces persist into the store and survive restarts; with
		// a peer configured, traces captured anywhere in the fleet are
		// fetched instead of re-captured.
		r.Traces.SetRemote(artifact.TraceRemote{S: store})
	}
	if *peer != "" {
		cfg.ArtifactPeer = artifact.NewClient(*peer)
		if *artifacts == "" {
			r.Traces.SetRemote(artifact.PeerTraceRemote{C: cfg.ArtifactPeer})
		}
	}
	if *coordinator {
		list := splitBackends(*backends)
		if len(list) == 0 {
			return fmt.Errorf("-coordinator needs -backends host1,host2,...")
		}
		cfg.Executor = fleet.New(list).Execute
	}

	srv := server.New(cfg)
	if err := srv.Start(); err != nil {
		return err
	}
	// The smoke test and service managers parse this line; keep its shape.
	fmt.Fprintf(os.Stderr, "vcfrd: listening on %s (workers=%d queue=%d trace-cache=%dMiB)\n",
		srv.Addr(), *workers, *queue, *traceCache)
	if *coordinator {
		fmt.Fprintf(os.Stderr, "vcfrd: coordinating %d backends: %s\n",
			len(splitBackends(*backends)), *backends)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintln(os.Stderr, "vcfrd: draining in-flight jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "vcfrd: drained, exiting")
	return nil
}

func splitBackends(s string) []string {
	var out []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, strings.TrimRight(b, "/"))
		}
	}
	return out
}
