// Command clustersim runs the multi-tenant interference campaign: a grid of
// cores × tenants cells co-running a tenant mix on scheduled clusters
// (shared L2, private DRCs, quantum time-sharing) under every architecture
// mode, judged against per-tenant solo references. The table ranks the
// paper's consolidation claim (Sec. IV-D): VCFR's co-run degradation tracks
// the baseline's, while naive ILR pays extra for the scattered footprint its
// location maps press into the shared L2.
//
// Usage:
//
//	clustersim
//	clustersim -cells 2c4t,1c2t -workloads bzip2,sjeng
//	clustersim -quantum 2000 -seed 7 -json
//	clustersim -mode vcfr -instructions 50000
//
// The default invocation is the canonical campaign (three workloads, three
// modes, the 2c2t and 1c2t cells); `experiments -mode multicore` and the
// vcfrd POST /v1/jobs kind=multicore endpoint run the same campaign and emit
// byte-identical envelopes with -json.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"vcfr/internal/harness"
	"vcfr/internal/multicore"
	"vcfr/internal/results"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloadsF = flag.String("workloads", "", "comma-separated tenant workload pool (default: the canonical set)")
		mode       = flag.String("mode", "all", "architecture modes: baseline | naive | vcfr | all")
		cellsF     = flag.String("cells", "", "comma-separated cores×tenants cells, e.g. 2c4t,1c2t (default: the canonical grid)")
		quantum    = flag.Uint64("quantum", 0, "scheduler time slice in committed instructions (0 = default 10000)")
		seed       = flag.Int64("seed", 42, "campaign seed (every tenant layout derives from it)")
		scale      = flag.Int("scale", 1, "workload iteration scale")
		spread     = flag.Int("spread", 0, "ILR scatter factor (0 = default)")
		maxInsts   = flag.Uint64("instructions", 0, "per-tenant instruction cap (0 = default 25000)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel cell workers")
		jsonOut    = flag.Bool("json", false, "emit the campaign as a versioned results envelope instead of a text table")
	)
	flag.Parse()

	modes, err := multicore.ParseModes(*mode)
	if err != nil {
		return err
	}
	cfg := multicore.Config{
		Modes:    modes,
		Quantum:  *quantum,
		Seed:     *seed,
		Scale:    *scale,
		Spread:   *spread,
		MaxInsts: *maxInsts,
	}
	if *workloadsF != "" {
		cfg.Workloads = strings.Split(*workloadsF, ",")
	}
	if *cellsF != "" {
		cells, err := multicore.ParseCells(*cellsF)
		if err != nil {
			return err
		}
		cfg.Cells = cells
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := multicore.RunCampaign(ctx, harness.NewRunner(*workers), cfg, nil)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := results.Write(os.Stdout, rep.Envelope()); err != nil {
			return err
		}
	} else {
		fmt.Print(rep.Table().Render())
	}
	if rep.Partial {
		return fmt.Errorf("campaign incomplete: some cells were not executed")
	}
	return nil
}
