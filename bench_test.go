// Package vcfr's root benchmark suite regenerates every table and figure of
// the paper as a testing.B benchmark, reporting each experiment's headline
// number as a custom benchmark metric:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig12 -benchtime=3x
//
// The mapping from benchmark to paper artifact is in DESIGN.md's experiment
// index; EXPERIMENTS.md records paper-vs-measured values.
package vcfr_test

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"vcfr/internal/harness"
)

// benchCfg is the shared experiment configuration: every SPEC analog at
// scale 1 (a few hundred thousand instructions each), the calibrated
// defaults otherwise.
func benchCfg() harness.Config {
	return harness.Config{Seed: 42}
}

// runExperiment executes the experiment once per benchmark iteration and
// reports the average row's numeric cells as metrics. Cells run on the
// runner's worker pool sized to GOMAXPROCS; output is identical at any
// worker count (see BenchmarkSweepWorkers for the scaling curve).
func runExperiment(b *testing.B, id string, metric string) {
	b.Helper()
	exp, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	r := harness.NewRunner(0)
	for i := 0; i < b.N; i++ {
		tb, err := r.Run(context.Background(), exp, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := averageMetric(tb); ok {
			b.ReportMetric(v, metric)
		}
	}
}

// BenchmarkSweepWorkers measures the full experiment sweep at several worker
// counts — the wall-clock scaling curve of the parallel runner. On a
// multi-core host the 4-worker run is expected to be >= 2x faster than
// 1 worker; on a single-core host the counts tie (the pool is
// GOMAXPROCS-bound) while output stays byte-identical.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			r := harness.NewRunner(workers)
			cfg := benchCfg()
			cfg.MaxInsts = 100_000
			for i := 0; i < b.N; i++ {
				for _, res := range r.RunAll(context.Background(), harness.Experiments, cfg) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// averageMetric extracts the last parseable number from the "average" row.
func averageMetric(t *harness.Table) (float64, bool) {
	for _, row := range t.Rows {
		if len(row) == 0 || row[0] != "average" {
			continue
		}
		for i := len(row) - 1; i >= 1; i-- {
			cell := strings.TrimSuffix(strings.TrimPrefix(row[i], "+"), "%")
			if v, err := strconv.ParseFloat(cell, 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// BenchmarkFig2EmulatorSlowdown — Fig. 2: software-emulated ILR runs
// hundreds of times slower than native execution.
func BenchmarkFig2EmulatorSlowdown(b *testing.B) {
	runExperiment(b, "fig2", "slowdown-x")
}

// BenchmarkFig3NaiveILRCaches — Fig. 3: naive hardware ILR's impact on IL1
// miss rate, prefetch usefulness, and L2 pressure.
func BenchmarkFig3NaiveILRCaches(b *testing.B) {
	runExperiment(b, "fig3", "l2-pressure-pct")
}

// BenchmarkFig4NaiveILRIPC — Fig. 4: naive hardware ILR IPC normalized to
// the baseline (paper: 0.61-0.66 average).
func BenchmarkFig4NaiveILRIPC(b *testing.B) {
	runExperiment(b, "fig4", "normalized-ipc")
}

// BenchmarkTable1Properties — Table I: per-architecture execution properties.
func BenchmarkTable1Properties(b *testing.B) {
	runExperiment(b, "table1", "normalized-ipc")
}

// BenchmarkTable2StaticAnalysis — Table II: static control-flow counts.
func BenchmarkTable2StaticAnalysis(b *testing.B) {
	runExperiment(b, "table2", "resolved-indirect")
}

// BenchmarkFig9Functions — Fig. 9: functions with/without ret instructions.
func BenchmarkFig9Functions(b *testing.B) {
	runExperiment(b, "fig9", "funcs-without-ret")
}

// BenchmarkFig11GadgetRemoval — Fig. 11: fraction of ROP gadgets removed by
// randomization (paper: ~98%).
func BenchmarkFig11GadgetRemoval(b *testing.B) {
	runExperiment(b, "fig11", "removed-pct")
}

// BenchmarkPayloadAssembly — Sec. V-B: payload templates assemble before
// randomization, none after.
func BenchmarkPayloadAssembly(b *testing.B) {
	runExperiment(b, "payloads", "")
}

// BenchmarkFig12VCFRSpeedup — Fig. 12: VCFR speedup over naive hardware ILR
// with a 128-entry DRC (paper: 1.63x average).
func BenchmarkFig12VCFRSpeedup(b *testing.B) {
	runExperiment(b, "fig12", "speedup-x")
}

// BenchmarkFig13DRCSizes — Fig. 13: normalized IPC at DRC sizes 512/128/64
// (paper: >= 97.9% everywhere).
func BenchmarkFig13DRCSizes(b *testing.B) {
	runExperiment(b, "fig13", "norm-ipc-at-64")
}

// BenchmarkFig14DRCMissRates — Fig. 14: DRC miss rates at 512 and 64 entries
// (paper: 4.5% and 20.6%).
func BenchmarkFig14DRCMissRates(b *testing.B) {
	runExperiment(b, "fig14", "miss-at-64-pct")
}

// BenchmarkFig15PowerOverhead — Fig. 15: DRC dynamic power as a share of CPU
// dynamic power (paper: 0.18% average).
func BenchmarkFig15PowerOverhead(b *testing.B) {
	runExperiment(b, "fig15", "power-ovh-pct")
}

// BenchmarkAblationDRCAssoc — design ablation: DRC associativity at fixed
// capacity (the paper argues direct-mapped suffices).
func BenchmarkAblationDRCAssoc(b *testing.B) {
	runExperiment(b, "ablation-drc-assoc", "")
}

// BenchmarkAblationSplitDRC — design ablation: unified tagged DRC vs two
// per-direction halves (the paper's unified choice).
func BenchmarkAblationSplitDRC(b *testing.B) {
	runExperiment(b, "ablation-drc-split", "")
}

// BenchmarkAblationRetRandMode — design ablation: none vs software vs
// architectural return-address randomization.
func BenchmarkAblationRetRandMode(b *testing.B) {
	runExperiment(b, "ablation-retrand", "")
}

// BenchmarkAblationPredictSpace — design ablation: predicting on UPC (the
// paper's choice) vs predicting on RPC.
func BenchmarkAblationPredictSpace(b *testing.B) {
	runExperiment(b, "ablation-predict-space", "")
}

// BenchmarkAblationPageConfined — design ablation: free placement vs
// page-confined randomization (Sec. IV-D).
func BenchmarkAblationPageConfined(b *testing.B) {
	runExperiment(b, "ablation-page-confined", "")
}

// BenchmarkAblationDRC2 — design ablation: the paper's rejected alternative
// of a dedicated level-2 DRC lookup buffer vs sharing the L2 (Sec. IV-B).
func BenchmarkAblationDRC2(b *testing.B) {
	runExperiment(b, "ablation-drc2", "")
}

// BenchmarkAblationContextSwitch — context switches flush the
// process-private DRC state; how much does that cost?
func BenchmarkAblationContextSwitch(b *testing.B) {
	runExperiment(b, "ablation-context-switch", "")
}

// BenchmarkEntropy — Sec. V-C(a): placement entropy and guessing-attack
// difficulty as a function of scatter spread.
func BenchmarkEntropy(b *testing.B) {
	runExperiment(b, "entropy", "")
}

// BenchmarkGadgetGuessing — Sec. II's threat model: blind gadget guessing
// over the full 32-bit space.
func BenchmarkGadgetGuessing(b *testing.B) {
	runExperiment(b, "gadget-guessing", "")
}

// BenchmarkExtensionSuperscalar — the paper's future-work direction: VCFR
// overhead on a dual-issue core.
func BenchmarkExtensionSuperscalar(b *testing.B) {
	runExperiment(b, "extension-superscalar", "")
}

// BenchmarkBaselineInPlace — the software in-place randomization baseline of
// the paper's introduction vs complete ILR.
func BenchmarkBaselineInPlace(b *testing.B) {
	runExperiment(b, "baseline-inplace", "complete-removed-pct")
}

// BenchmarkExtensionMulticore — two VCFR processes over a shared L2
// (Sec. IV-D).
func BenchmarkExtensionMulticore(b *testing.B) {
	runExperiment(b, "extension-multicore", "")
}
