// Quickstart: assemble a program, randomize it, run it under VCFR, and look
// at the security and performance story end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vcfr/internal/core"
	"vcfr/internal/cpu"
)

// A program with a loop, a helper function, and an indirect call — enough
// control flow for the randomization to have something to chew on.
const source = `
.entry main
main:
	movi r10, 1000       ; sum squares of 1..1000 through a function pointer
	movi r9, 0
	movi r11, square     ; code-address constant (relocated by the rewriter)
loop:
	cmpi r10, 0
	je done
	mov r1, r10
	callr r11
	add r9, r0
	subi r10, 1
	jmp loop
done:
	mov r1, r9
	sys 3                ; print r9
	movi r1, 0
	sys 0

.func square
square:
	mov r0, r1
	mul r0, r1
	ret
`

func main() {
	// 1. Assemble and randomize. Equal seeds give identical layouts; a
	//    production deployment would draw the seed from a CSPRNG and
	//    re-randomize periodically.
	sys, err := core.NewSystemFromSource("quickstart", source, core.Options{Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("randomized %d instructions, %.1f bits of placement entropy, %d-byte tables\n",
		st.Instructions, st.EntropyBits, st.TableBytes)

	// 2. Functional equivalence: the randomized binary behaves identically.
	native, err := sys.Run(core.ExecNative)
	if err != nil {
		log.Fatal(err)
	}
	vcfr, err := sys.Run(core.ExecVCFR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native output: %q   VCFR output: %q   (equal: %v)\n",
		native.Out, vcfr.Out, string(native.Out) == string(vcfr.Out))

	// 3. Attack surface: how many ROP gadgets survive randomization?
	rep := sys.GadgetReport()
	fmt.Printf("gadgets: %d before, %d after randomization (%.1f%% removed)\n",
		rep.Total, rep.Surviving, 100*rep.RemovalRate)
	for tmpl, before := range rep.PayloadsBefore {
		fmt.Printf("  payload %-18s before: %-9v after: %v\n",
			tmpl, verdict(before), verdict(rep.PayloadsAfter[tmpl]))
	}

	// 4. Cycle-level cost: what does the hardware support cost?
	base, err := sys.Simulate(cpu.ModeBaseline, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	prot, err := sys.Simulate(cpu.ModeVCFR, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline IPC %.3f, VCFR IPC %.3f (%.1f%% overhead), %d DRC lookups (%.1f%% miss)\n",
		base.Stats.IPC(), prot.Stats.IPC(),
		100*(1-prot.Stats.IPC()/base.Stats.IPC()),
		prot.DRC.Lookups, 100*prot.DRC.MissRate())
}

func verdict(assembles bool) string {
	if assembles {
		return "assembles"
	}
	return "fails"
}
