// ropdefense mounts a real return-oriented-programming attack against a
// vulnerable network-service-style program and shows the three outcomes of
// the paper's threat model (Sec. II, Sec. V):
//
//  1. benign input: the service works, randomized or not;
//
//  2. the ROP payload against the unprotected binary: full control-flow
//     hijack (the attacker's message appears, the service never recovers);
//
//  3. the same payload against the VCFR-protected binary: the very first
//     gadget address trips the randomized-tag check and the machine faults.
//
//     go run ./examples/ropdefense
package main

import (
	"errors"
	"fmt"
	"log"

	"vcfr/internal/core"
	"vcfr/internal/emu"
	"vcfr/internal/gadget"
)

// The victim: reads a request into a fixed 32-byte stack buffer with no
// bounds check (the classic CWE-121), then echoes a status line. Its
// statically linked runtime functions carry the usual gadget supply.
const victimSource = `
.entry main
main:
	call handle
	movi r1, 'o'
	sys 1
	movi r1, 'k'
	sys 1
	movi r1, 10
	sys 1
	movi r1, 0
	sys 0

; handle reads the request into buf[32] on the stack. No bounds check.
.func handle
handle:
	subi sp, 32
	mov r2, sp
readl:
	sys 2               ; getchar -> r0
	cmpi r0, -1
	je rdone
	mov r1, r0
	storeb [r2+0], r1
	addi r2, 1
	jmp readl
rdone:
	addi sp, 32
	ret

; ---- statically linked runtime (the gadget supply) ----
.func putch
putch:
	sys 1
	ret
.func quit
quit:
	sys 0
	ret
.func restore1
restore1:
	pop r1
	ret
.func restore5
restore5:
	pop r5
	ret
.func storefn
storefn:
	store [r5+0], r1
	ret
`

func main() {
	sys, err := core.NewSystemFromSource("victim", victimSource, core.Options{Seed: 1337})
	if err != nil {
		log.Fatal(err)
	}

	// The attacker studies the DISTRIBUTED binary (the original layout) and
	// compiles a payload, exactly like ROPgadget's auto-roper.
	pool := gadget.Scan(sys.Original(), gadget.DefaultMaxInsts)
	chain, err := gadget.BuildPrintChain(pool, "PWNED!")
	if err != nil {
		log.Fatalf("payload assembly: %v", err)
	}
	fmt.Printf("attacker found %d gadgets; payload uses %d (e.g. %q at %#x)\n",
		len(pool), len(chain.Gadgets), chain.Gadgets[0].String(), chain.Gadgets[0].Addr)

	// 32 filler bytes overflow the buffer; the chain lands on the saved
	// return address and beyond.
	payload := append(make([]byte, 32), chain.Bytes()...)

	fmt.Println("\n--- benign request, unprotected binary ---")
	report(sys.Run(core.ExecNative, []byte("GET /")...))

	fmt.Println("\n--- benign request, VCFR-protected binary ---")
	report(sys.Run(core.ExecVCFR, []byte("GET /")...))

	fmt.Println("\n--- ROP payload, unprotected binary ---")
	report(sys.Run(core.ExecNative, payload...))

	fmt.Println("\n--- ROP payload, VCFR-protected binary ---")
	report(sys.Run(core.ExecVCFR, payload...))
}

func report(res emu.RunResult, err error) {
	switch {
	case errors.Is(err, emu.ErrControlViolation):
		fmt.Printf("FAULT: %v\n", err)
		fmt.Println("(the gadget address is an un-randomized location whose randomized tag is set)")
	case err != nil:
		fmt.Printf("error: %v\n", err)
	default:
		fmt.Printf("output: %q (exit %d)\n", res.Out, res.ExitCode)
	}
}
