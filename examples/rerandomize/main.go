// rerandomize demonstrates the paper's leakage defense (Sec. V-C): even if
// an attacker somehow learns one generation's randomization tables, periodic
// re-randomization makes the knowledge stale. The example randomizes the
// same binary under several epochs, verifies behaviour never changes, and
// shows that a payload compiled against a LEAKED epoch's layout faults once
// the system has moved to the next epoch.
//
//	go run ./examples/rerandomize
package main

import (
	"errors"
	"fmt"
	"log"

	"vcfr/internal/core"
	"vcfr/internal/emu"
	"vcfr/internal/gadget"
)

const serviceSource = `
.entry main
main:
	call handle
	movi r1, 'o'
	sys 1
	movi r1, 'k'
	sys 1
	movi r1, 0
	sys 0
.func handle
handle:
	subi sp, 32
	mov r2, sp
readl:
	sys 2
	cmpi r0, -1
	je rdone
	mov r1, r0
	storeb [r2+0], r1
	addi r2, 1
	jmp readl
rdone:
	addi sp, 32
	ret
.func putch
putch:
	sys 1
	ret
.func quit
quit:
	sys 0
	ret
.func restore1
restore1:
	pop r1
	ret
`

func main() {
	epoch1, err := core.NewSystemFromSource("svc", serviceSource, core.Options{Seed: 100})
	if err != nil {
		log.Fatal(err)
	}

	// Several epochs: layouts differ, behaviour does not.
	fmt.Println("epoch  entry placement  output")
	cur := epoch1
	for seed := int64(100); seed < 104; seed++ {
		if seed > 100 {
			cur, err = cur.Rerandomize(seed)
			if err != nil {
				log.Fatal(err)
			}
		}
		randEntry, _ := cur.Rewrite().Tables.ToRand(cur.Original().Entry)
		out, err := cur.Run(core.ExecVCFR, []byte("ping")...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %#08x       %q\n", seed, randEntry, out.Out)
	}

	// The leak scenario: the attacker obtains epoch 1's full tables and
	// compiles a payload in RANDOMIZED addresses — the strongest possible
	// leak. They target the randomized address of the `quit` gadget.
	quitAddr, _ := epoch1.Original().Lookup("quit")
	leakedQuit, _ := epoch1.Rewrite().Tables.ToRand(quitAddr)
	pool := gadget.Scan(epoch1.Original(), gadget.DefaultMaxInsts)
	chain, err := gadget.BuildPrintChain(pool, "X")
	if err != nil {
		log.Fatal(err)
	}
	// Translate the chain into epoch-1 randomized space (perfect leak).
	leaked := make([]uint32, len(chain.Words))
	for i, w := range chain.Words {
		if r, ok := epoch1.Rewrite().Tables.ToRand(w); ok {
			leaked[i] = r
		} else {
			leaked[i] = w
		}
	}
	payload := make([]byte, 32, 32+4*len(leaked))
	for _, w := range leaked {
		payload = append(payload, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}

	fmt.Printf("\nattacker leaked epoch-100 tables (quit gadget at randomized %#x)\n", leakedQuit)

	_, err = epoch1.Run(core.ExecVCFR, payload...)
	fmt.Printf("payload vs leaked epoch:     %s\n", attackVerdict(err))

	epoch2, err := epoch1.Rerandomize(9999)
	if err != nil {
		log.Fatal(err)
	}
	_, err = epoch2.Run(core.ExecVCFR, payload...)
	fmt.Printf("payload vs re-randomized:    %s\n", attackVerdict(err))
	fmt.Println("\nre-randomization invalidated the leak: the old randomized addresses no")
	fmt.Println("longer decode to the attacker's gadgets (or to anything at all).")
}

func attackVerdict(err error) string {
	switch {
	case err == nil:
		return "SUCCEEDED (control hijacked)"
	case errors.Is(err, emu.ErrControlViolation):
		return "blocked: control-flow violation fault"
	default:
		return "blocked: " + err.Error()
	}
}
