// multicore runs two independently randomized processes on a two-core
// cluster sharing an L2 — the deployment the paper calls out as easy
// because VCFR randomizes only read-only instruction state (Sec. IV-D).
// Each process carries its own tables; each core has a private DRC.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"vcfr/internal/cpu"
	"vcfr/internal/ilr"
	"vcfr/internal/workloads"
)

func main() {
	// Two different programs, randomized under two different seeds — two
	// processes with unrelated randomized layouts.
	w0 := workloads.MustByName("h264ref", 1)
	w1 := workloads.MustByName("hmmer", 1)
	r0, err := ilr.Rewrite(w0.Img, ilr.Options{Seed: 10})
	if err != nil {
		log.Fatal(err)
	}
	r1, err := ilr.Rewrite(w1.Img, ilr.Options{Seed: 20})
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := cpu.NewCluster(cpu.DefaultConfig(cpu.ModeVCFR), []cpu.ClusterProc{
		{Img: r0.VCFR, Trans: r0.Tables, RandRA: r0.RandRA, Input: w0.Input},
		{Img: r1.VCFR, Trans: r1.Tables, RandRA: r1.RandRA, Input: w1.Input},
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := cluster.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	names := []string{w0.Name, w1.Name}
	for i, res := range results {
		fmt.Printf("core %d (%s): output %q, IPC %.3f, %d private-DRC lookups (%.1f%% miss)\n",
			i, names[i], res.Out, res.Stats.IPC(),
			res.DRC.Lookups, 100*res.DRC.MissRate())
	}
	fmt.Printf("shared L2: %d accesses, %.2f%% miss — the only coupling between the cores\n",
		results[0].L2.Accesses, 100*results[0].L2.MissRate())
	fmt.Println("each core de-randomizes against its own process tables; nothing to invalidate across cores")
}
