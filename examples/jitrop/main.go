// jitrop plays out the just-in-time code-reuse attack of Snow et al. (cited
// in the paper's introduction as the reason fine-grained *load-time*
// randomization is not enough): the attacker first uses a memory-disclosure
// bug to READ the victim's code at run time, harvests gadgets from the
// leaked bytes, compiles a payload on the fly, and only then fires the
// control-flow hijack.
//
// Two defenses face the same attacker:
//
//   - software in-place randomization (the Pappas-style baseline): the
//     leaked bytes ARE the executable layout, so the harvested gadget
//     addresses are directly usable — JIT-ROP wins;
//
//   - VCFR: the leaked bytes show the ORIGINAL layout (that is what memory
//     holds!), but those addresses are not executable — control may only
//     flow through randomized-space addresses, which appear nowhere in
//     readable memory (the tables are in pages invisible to user space).
//     The freshly compiled payload faults on its first gadget.
//
//     go run ./examples/jitrop
package main

import (
	"errors"
	"fmt"
	"log"

	"vcfr/internal/asm"
	"vcfr/internal/emu"
	"vcfr/internal/gadget"
	"vcfr/internal/ilr"
	"vcfr/internal/program"
)

const victimSource = `
.entry main
main:
	call handle
	movi r1, 'o'
	sys 1
	movi r1, 'k'
	sys 1
	movi r1, 0
	sys 0
.func handle
handle:
	subi sp, 32
	mov r2, sp
readl:
	sys 2
	cmpi r0, -1
	je rdone
	mov r1, r0
	storeb [r2+0], r1
	addi r2, 1
	jmp readl
rdone:
	addi sp, 32
	ret
.func putch
putch:
	sys 1
	ret
.func quit
quit:
	sys 0
	ret
.func restore1
restore1:
	pop r1
	ret
`

// discloseText models the arbitrary-read primitive: the attacker dumps the
// victim's executable region out of the running process's memory.
func discloseText(m *emu.Machine, textBase uint32, size int) *program.Image {
	leaked := make([]byte, size)
	m.Mem().ReadBytes(textBase, leaked)
	return &program.Image{
		Name:  "leaked",
		Entry: textBase,
		Segments: []program.Segment{{
			Name: program.SegText, Addr: textBase, Data: leaked,
			Perm: program.PermR | program.PermX,
		}},
	}
}

func main() {
	img := asm.MustAssemble("victim", victimSource)

	fmt.Println("=== JIT-ROP vs software in-place randomization ===")
	inplace, _, err := ilr.InPlace(img, 77)
	if err != nil {
		log.Fatal(err)
	}
	attackNative(inplace)

	fmt.Println("\n=== JIT-ROP vs VCFR ===")
	res, err := ilr.Rewrite(img, ilr.Options{Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	attackVCFR(res)
}

// attackNative mounts the disclosure-then-hijack sequence against a natively
// running (in-place-randomized) victim.
func attackNative(victim *program.Image) {
	m, err := emu.NewMachine(victim, emu.Config{Mode: emu.ModeNative})
	if err != nil {
		log.Fatal(err)
	}
	text := victim.Text()
	leaked := discloseText(m, text.Addr, len(text.Data))
	pool := gadget.Scan(leaked, gadget.DefaultMaxInsts)
	chain, err := gadget.BuildPrintChain(pool, "JITROP")
	if err != nil {
		fmt.Printf("payload compilation failed: %v\n", err)
		return
	}
	fmt.Printf("disclosed %d bytes, harvested %d gadgets, compiled a %d-word chain\n",
		len(text.Data), len(pool), len(chain.Words))

	payload := append(make([]byte, 32), chain.Bytes()...)
	out, err := emu.Run(victim, emu.Config{Mode: emu.ModeNative, Input: payload})
	switch {
	case err != nil:
		fmt.Printf("attack outcome: fault (%v)\n", err)
	default:
		fmt.Printf("attack outcome: output %q — the in-place layout leaked everything the attacker needed\n", out.Out)
	}
}

// attackVCFR mounts the identical sequence against the VCFR-protected
// victim.
func attackVCFR(res *ilr.Result) {
	m, err := emu.NewMachine(res.VCFR, emu.Config{
		Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA,
	})
	if err != nil {
		log.Fatal(err)
	}
	text := res.VCFR.Text()
	leaked := discloseText(m, text.Addr, len(text.Data))
	pool := gadget.Scan(leaked, gadget.DefaultMaxInsts)
	chain, err := gadget.BuildPrintChain(pool, "JITROP")
	if err != nil {
		fmt.Printf("payload compilation failed: %v\n", err)
		return
	}
	fmt.Printf("disclosed %d bytes (the ORIGINAL layout — that is what memory holds), "+
		"harvested %d gadgets, compiled a %d-word chain\n",
		len(text.Data), len(pool), len(chain.Words))

	payload := append(make([]byte, 32), chain.Bytes()...)
	_, err = emu.Run(res.VCFR, emu.Config{
		Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA, Input: payload,
	})
	switch {
	case errors.Is(err, emu.ErrControlViolation):
		fmt.Printf("attack outcome: control-flow violation fault (%v)\n", err)
		fmt.Println("the leaked addresses are readable but NOT executable: execution lives in the")
		fmt.Println("randomized space, and the only map into it — the tables — is invisible to user space")
	case err != nil:
		fmt.Printf("attack outcome: fault (%v)\n", err)
	default:
		fmt.Println("attack outcome: SUCCEEDED (unexpected!)")
	}
}
