// cachestudy sweeps the De-Randomization Cache design space on one workload:
// capacity (the paper's Fig. 13/14 axis), associativity, and unified-vs-
// split organization, reporting IPC, DRC miss rate, and the DRC's share of
// dynamic power for each point.
//
//	go run ./examples/cachestudy
//	go run ./examples/cachestudy -workload xalan -scale 2
package main

import (
	"flag"
	"fmt"
	"log"

	"vcfr/internal/core"
	"vcfr/internal/cpu"
	"vcfr/internal/power"
	"vcfr/internal/workloads"
)

func main() {
	workload := flag.String("workload", "h264ref", "workload to study")
	scale := flag.Int("scale", 1, "workload scale")
	flag.Parse()

	w, err := workloads.ByName(*workload, *scale)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(w.Img, core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	base, err := sys.Simulate(cpu.ModeBaseline, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: baseline IPC %.3f over %d instructions\n\n",
		*workload, base.Stats.IPC(), base.Stats.Instructions)
	fmt.Printf("%-9s %-6s %-8s  %-9s %-9s %-10s %-9s\n",
		"entries", "assoc", "org", "norm-IPC", "DRC-miss", "walks", "power-ovh")

	model := power.DefaultModel()
	for _, entries := range []int{32, 64, 128, 256, 512} {
		for _, conf := range []struct {
			assoc int
			split bool
			name  string
		}{
			{1, false, "unified"},
			{2, false, "unified"},
			{1, true, "split"},
		} {
			entries, conf := entries, conf
			res, err := sys.Simulate(cpu.ModeVCFR, func(c *cpu.Config) {
				c.DRCEntries = entries
				c.DRCAssoc = conf.assoc
				c.DRCSplit = conf.split
			}, 0)
			if err != nil {
				log.Fatal(err)
			}
			cfg := cpu.DefaultConfig(cpu.ModeVCFR)
			cfg.DRCEntries, cfg.DRCAssoc, cfg.DRCSplit = entries, conf.assoc, conf.split
			b := model.Analyze(res, cfg)
			fmt.Printf("%-9d %-6d %-8s  %-9.3f %-9s %-10d %.3f%%\n",
				entries, conf.assoc, conf.name,
				res.Stats.IPC()/base.Stats.IPC(),
				fmt.Sprintf("%.1f%%", 100*res.DRC.MissRate()),
				res.DRC.TableWalks,
				b.DRCOverheadPct())
		}
	}
	fmt.Println("\npaper's design point: 64-512 direct-mapped unified entries;")
	fmt.Println("miss penalty stays marginal because the table walk hits the L2 (Sec. IV-B).")
}
